"""The leader function (Algorithm 2), one instance per shard.

A FIFO queue per shard feeds a leader instance with committed updates in
txid order.  For each update the leader

➊ reads the system node and verifies the transaction is at the head of the
  node's pending list,
➋ if the follower died between push and commit, tries to commit on its
  behalf (TryCommit) once the lock lease has expired — otherwise the update
  is rejected and the client notified of the failure,
➌ replicates the staged node image (and the parent's, for create/delete)
  into the user store of every region in parallel, attaching the current
  epoch (the watch notifications still in flight),
➍ consumes triggered watches, adds their ids to the epoch counters and
  invokes the watch fan-out function,
➎ notifies the client of success and pops the transaction.

Ambiguous states (lock still held by a live follower) raise, making the
FIFO queue redeliver the batch; the ``applied_tx`` watermark makes
redeliveries idempotent.

Sharded-pipeline extensions (disabled at ``leader_shards=1``, which runs
the paper's single-leader Algorithm 2 unchanged):

* **session fences** — a session's writes may land on different shards;
  each message carries a session-sequence fence and a leader only starts a
  message after the session's previous write finished on whichever shard
  owns it, so commits and user-store visibility follow request order (Z2);
* **parent replication gate** — the root is the parent of every top-level
  node and is therefore written by several shards; before replicating a
  parent image the leader waits until its txid reaches the head of the
  parent's pending-transaction list, giving a per-path total order;
* **write coalescing** — inside one delivery batch (bounded by the SQS
  ``fifo_batch_limit`` calibration) a user-store write superseded by a
  later write to the same path is skipped; the corresponding client
  notifications are held back until the superseding write has landed, so
  acknowledged data is always readable.

With ``distributor_enabled`` the leader stops after ➊–➋ (plus the fence
and pending-list gates): steps ➌–➍ move into the per-region distributor
stage (:mod:`repro.faaskeeper.distributor`) and the client is
acknowledged per ``ack_policy`` — immediately after commit verification
under ``"on_commit"``, or once every region's user store holds the write
under ``"on_replicate"`` (the wait rides a spawned process, off the
leader's critical path).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Generator, List, Optional, Tuple

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, ListAppend, ListRemove, Set
from ..sim.kernel import AllOf
from .distributor import write_user_image
from .follower import merge_multi_commit, multi_replication_plan
from .layout import SYSTEM_NODES
from .model import Response

__all__ = ["LeaderLogic", "RetryBatch", "multi_replication_plan"]


class RetryBatch(Exception):
    """Raised to make the FIFO queue redeliver the current batch."""


class LeaderLogic:
    """Behaviour of one leader shard's function, bound to one deployment."""

    def __init__(self, service, shard: int = 0) -> None:
        self.service = service
        self.shard = shard
        # Leader instances are sticky (warm sandbox); the epoch counters are
        # cached by the shared ledger and hydrated lazily after cold starts.
        self._epoch_loaded = False
        self._pending_callbacks: List = []
        # Per-invocation coalescing state (reset in handler()).
        self._deferred: List[Tuple[str, Dict[str, Any], Any]] = []
        self._skipped_images: Dict[str, Tuple[Optional[Dict[str, Any]], int, str, bool]] = {}

    def cold_restart(self) -> None:
        """Drop every piece of warm-sandbox state (the chaos harness calls
        this when an invocation crashes): the epoch mirror re-hydrates from
        storage on the next invocation, exactly like a real cold start."""
        self._epoch_loaded = False
        self._pending_callbacks = []
        self._deferred = []
        self._skipped_images = {}

    # ------------------------------------------------------------ epoch
    @property
    def sharded(self) -> bool:
        return self.service.config.leader_shards > 1

    @property
    def distribution(self):
        """The deployment's distributor stage (None when disabled: the
        leader then replicates and fans out watches inline, as in the
        paper's Algorithm 2)."""
        return self.service.distribution

    def _load_epoch(self, fctx) -> Generator:
        if not self._epoch_loaded:
            yield from self.service.epoch_ledger.load(fctx.ctx)
            self._epoch_loaded = True
        return None

    def epoch_snapshot(self, region: str) -> List[str]:
        return self.service.epoch_ledger.snapshot(region)

    # ------------------------------------------------------------ fences
    def _wait_fence(self, msg: Dict[str, Any]) -> Generator:
        """Hold the message until the session's previous write (possibly on
        another shard) has been applied."""
        board = self.service.fence_board
        fence = msg.get("fence")
        if board is None or fence is None:
            return None
        yield from board.wait_turn(msg["session"], fence)
        return None

    def _pass_fence(self, msg: Dict[str, Any]) -> None:
        # Fences advance as soon as the message's processing is decided —
        # never deferred, or two shard leaders holding back fences for each
        # other's batches would deadlock.  A coalesced (skipped) write is
        # not yet readable when its fence passes; its client *notification*
        # is what gets deferred until the superseding write lands, and the
        # client library refuses to start a read before all earlier write
        # responses arrived, preserving read-your-writes.
        board = self.service.fence_board
        fence = msg.get("fence")
        if board is None or fence is None:
            return
        board.advance(msg["session"], fence)

    # ------------------------------------------------------------ coalescing
    @staticmethod
    def _write_entries(msg: Dict[str, Any]) -> List[Tuple[str, bool]]:
        """``(path, is_meta_only)`` pairs a message writes to the user
        store.  A multi contributes one entry per touched path (so it both
        supersedes earlier pending writes to the same paths and can itself
        be superseded by later ones); derived from the subs' path fields
        alone — the full image plan is only built when a multi is actually
        processed."""
        if msg["op"] != "multi":
            entries = [(msg["path"], False)]
            if msg.get("parent"):
                entries.append((msg["parent"], True))
            return entries
        order: List[str] = []
        seen = set()
        node_paths = set()
        for sub in msg["subs"]:
            if sub["op"] == "check":
                continue
            for path, is_node in ((sub["path"], True),
                                  (sub.get("parent"), False)):
                if not path:
                    continue
                if path not in seen:
                    seen.add(path)
                    order.append(path)
                if is_node:
                    node_paths.add(path)
        return [(path, path not in node_paths) for path in order]

    def _coalesce_plan(self, batch: List[Dict[str, Any]]
                       ) -> Dict[int, FrozenSet[str]]:
        """Last-writer-wins write coalescing inside one delivery batch.

        Returns ``{message index: paths whose user-store write is skipped}``.
        A node-image write is superseded by a later node-image write to the
        same path (the staged images are produced under the node lock, so a
        later batch position implies a later commit); a parent metadata
        update is superseded by any later write to the parent's path.
        """
        if not self.service.config.coalesce_enabled or len(batch) < 2:
            return {}
        entries = [self._write_entries(msg) for msg in batch]
        last_image: Dict[str, int] = {}
        last_meta: Dict[str, int] = {}
        for i, msg_entries in enumerate(entries):
            for path, is_meta in msg_entries:
                (last_meta if is_meta else last_image)[path] = i
        plan: Dict[int, FrozenSet[str]] = {}
        for i, msg_entries in enumerate(entries):
            skip = set()
            for path, is_meta in msg_entries:
                if not is_meta and last_image[path] > i:
                    skip.add(path)
                if is_meta and max(last_image.get(path, -1),
                                   last_meta[path]) > i:
                    skip.add(path)
            if skip:
                plan[i] = frozenset(skip)
        return plan

    def _queue_success(self, fctx, msg: Dict[str, Any], txid: int,
                       defer: bool) -> Generator:
        if defer:
            self._deferred.append(("ok", msg, txid))
            return None
        yield from self._notify_success(fctx, msg, txid)
        return None

    def _queue_failure(self, fctx, msg: Dict[str, Any], error: str,
                       defer: bool) -> Generator:
        if defer:
            self._deferred.append(("fail", msg, error))
            return None
        yield from self._notify_failure(msg, error)
        return None

    def _flush_superseded(self, fctx, paths: List[str]) -> Generator:
        """A message whose writes would have superseded earlier skipped ones
        was rejected: replay the newest skipped image for those paths so
        every acknowledged write is user-visible."""
        env = fctx.env
        procs = []
        for path in paths:
            entry = self._skipped_images.pop(path, None)
            if entry is None:
                continue
            image, image_txid, op, is_parent = entry
            for region in self.service.config.regions:
                procs.append(env.process(
                    self._replay(fctx, region, path, image, image_txid,
                                 op, is_parent),
                    name=f"replay:{path}@{region}"))
        if procs:
            yield AllOf(env, procs)
        return None

    def _replay(self, fctx, region: str, path: str,
                image: Optional[Dict[str, Any]], image_txid: int,
                op: str, is_parent: bool) -> Generator:
        if is_parent and image is not None and not image.get("deleted"):
            # A cross-shard writer (the root is a shared parent) may have
            # replicated a newer parent image since this one was skipped;
            # never clobber it with stale metadata.
            existing = yield from self.service.user_store.read_node(
                fctx.ctx, region, path)
            if existing is not None and \
                    existing.get("cversion", 0) >= image.get("cversion", 0):
                return None
        yield from self._replicate(fctx, region, path, image,
                                   self.epoch_snapshot(region),
                                   image_txid, op, is_parent)
        return None

    # ------------------------------------------------------------ handler
    def handler(self, fctx, batch: List[Dict[str, Any]]) -> Generator:
        fctx.crash_point("leader_entry")
        yield from self._load_epoch(fctx)
        self._pending_callbacks = []
        self._deferred = []
        self._skipped_images = {}
        # With the distributor stage the leader never writes the user store,
        # so in-batch coalescing (and its notification deferral) moves
        # downstream, where it generalizes across leader batches.
        plan = ({} if self.distribution is not None
                else self._coalesce_plan(batch))
        for i, msg in enumerate(batch):
            yield from self.process(fctx, msg,
                                    skip_paths=plan.get(i, frozenset()))
            fctx.crash_point("leader_mid_batch")
        # Flush completions of coalesced messages: every superseding write
        # of this batch has landed by now, so an acknowledged write is
        # always readable.
        for kind, msg, payload in self._deferred:
            if kind == "ok":
                yield from self._notify_success(fctx, msg, payload)
            else:
                yield from self._notify_failure(msg, payload)
        self._deferred = []
        self._skipped_images = {}
        # WaitAll(WatchCallback): the instance lingers until all of its
        # notifications are delivered and cleared from the epoch.
        if self._pending_callbacks:
            yield AllOf(fctx.env, self._pending_callbacks)
        self._pending_callbacks = []
        return None

    def process(self, fctx, msg: Dict[str, Any],
                skip_paths: FrozenSet[str] = frozenset()) -> Generator:
        if msg["op"] == "multi":
            yield from self._process_multi(fctx, msg, skip_paths)
            return None
        env = fctx.env
        txid = msg["_seq"]
        path = msg["path"]
        sys_store = self.service.system_store

        yield from self._wait_fence(msg)
        # A message whose write is skipped (superseded within this batch)
        # must not be acknowledged before the superseding write lands: its
        # notification is emitted at batch end instead.
        defer = bool(skip_paths)

        affected = [(path, msg["node_image"], False)]
        if msg.get("parent"):
            affected.append((msg["parent"], msg["parent_image"], True))

        # ➊ verify commit status
        t0 = env.now
        node = yield from sys_store.get_item(fctx.ctx, SYSTEM_NODES, path)
        fctx.record("get_node", env.now - t0)
        node = node or {}
        if node.get("applied_tx", 0) >= txid:
            # Redelivered after a partial batch: already replicated (or
            # skipped — re-record skipped images so a later rejection in
            # this batch can still replay them).
            for target_path, image, is_parent in affected:
                if target_path in skip_paths:
                    self._skipped_images[target_path] = (image, txid,
                                                         msg["op"], is_parent)
            yield from self._queue_success(fctx, msg, txid, defer)
            self._pass_fence(msg)
            return None
        pending = node.get("transactions", [])
        if txid not in pending:
            committed = yield from self._try_commit(fctx, msg, txid, node)
            if not committed:
                # The request was never committed and cannot be: reject (Z1
                # intact).  Earlier writes it would have superseded must
                # become visible after all.
                affected_paths = [path] + ([msg["parent"]] if msg.get("parent") else [])
                yield from self._flush_superseded(fctx, affected_paths)
                yield from self._queue_failure(fctx, msg, "system_failure", defer)
                self._pass_fence(msg)
                return None
        elif pending[0] != txid:
            # Predecessor still unpopped — should not happen under FIFO
            # delivery, but redelivery is always safe.
            raise RetryBatch(f"txid {txid} behind {pending[0]} on {path}")

        # Durable commit log: the record must exist before anything
        # downstream (replication, distribution, watches, ack) can happen,
        # so every applied txid is replayable after a crash.
        if self.service.snapshots is not None:
            yield from self.service.snapshots.append_log(
                fctx, txid, self.shard,
                [(p, image, is_parent, msg["op"])
                 for p, image, is_parent in affected],
                session=msg.get("session"))
            fctx.crash_point("leader_after_log")

        # Sharded: a parent may be written by several shard leaders (the
        # root is every top-level node's parent), so gate its replication
        # on the parent's pending list — per-path writes then follow commit
        # order across shards.
        if self.sharded and msg.get("parent"):
            yield from self._await_path_turn(fctx, msg["parent"], txid)

        # Distributor stage: hand replication + watch fan-out to the
        # per-region distributor queues; ➌/➍ leave the critical path.
        if self.distribution is not None:
            writes = [(p, image, is_parent, msg["op"])
                      for p, image, is_parent in affected]
            pairs = [(p, msg["op"], is_parent)
                     for p, _image, is_parent in affected]
            yield from self._distribute_and_finish(
                fctx, msg, txid, writes, pairs,
                [p for p, _image, _is_parent in affected])
            return None

        # ➌ replicate to user stores, all regions in parallel (one epoch
        # snapshot per region per message — the snapshot cannot change
        # while the replication processes are being spawned)
        t0 = env.now
        data_kb = len(msg["node_image"].get("data", b"") or b"") / 1024.0
        yield fctx.compute(base_ms=0.3, payload_kb=data_kb, per_kb_ms=0.12)
        epochs = {region: self.epoch_snapshot(region)
                  for region in self.service.config.regions}
        procs = []
        for target_path, image, is_parent in affected:
            if target_path in skip_paths:
                self._skipped_images[target_path] = (image, txid, msg["op"],
                                                     is_parent)
                continue
            self._skipped_images.pop(target_path, None)
            for region in self.service.config.regions:
                procs.append(env.process(
                    self._replicate(fctx, region, target_path, image,
                                    epochs[region], txid, msg["op"], is_parent),
                    name=f"replicate:{target_path}@{region}"))
        if procs:
            yield AllOf(env, procs)
        fctx.record("update_user", env.now - t0)

        # ➍ watches: query + consume + fan out
        triggered = yield from self._consume_watches(
            fctx, [(p, msg["op"], is_parent) for p, _img, is_parent in affected])
        if triggered:
            watch_ids = [t.watch_id for t in triggered]
            yield from self.service.epoch_ledger.add(fctx.ctx, watch_ids)
            done = self.service.invoke_watch_fn(triggered, txid, shard=self.shard)
            cb = env.process(
                self.service.epoch_ledger.remove_after(
                    done, watch_ids, self.service.system_ctx),
                name="watch-callback")
            self._pending_callbacks.append(cb)

        # ➎ notify + pop
        yield from self._queue_success(fctx, msg, txid, defer)
        yield from self._pop_paths(fctx, [p for p, _img, _meta in affected], txid)
        self._pass_fence(msg)
        return None

    # ------------------------------------------------------------ distribution
    def _distribute_and_finish(self, fctx, msg: Dict[str, Any], txid: int,
                               writes: List[Tuple[str, Optional[Dict[str, Any]], bool, str]],
                               watch_pairs: List[Tuple[str, str, bool]],
                               pop_paths: List[str]) -> Generator:
        """Post-verification tail of the distributor pipeline: publish one
        distribution record per region, acknowledge per ``ack_policy``,
        pop the transaction and advance the session fence.

        The publish is awaited *before* the pop: a competing shard only
        starts (via the per-path pending-list gate) after the pop, so the
        regional queues receive same-path records in commit order.
        """
        env = fctx.env
        record = {
            "txid": txid,
            "shard": self.shard,
            "session": msg["session"],
            "writes": writes,
            "watch_pairs": watch_pairs,
        }
        t0 = env.now
        yield from self.distribution.publish(fctx, record)
        fctx.record("distribute", env.now - t0)
        if self.service.config.ack_policy == "on_commit":
            yield from self._queue_success(fctx, msg, txid, defer=False)
        else:
            # on_replicate keeps the paper's acknowledgement semantics —
            # the client hears back once every region holds the write —
            # without re-serializing the leader: the wait rides a spawned
            # process the handler lingers on.
            events = [self.distribution.visibility.event(region, txid)
                      for region in self.service.config.regions]
            self._pending_callbacks.append(env.process(
                self._ack_after(fctx, msg, txid, events),
                name=f"ack-after:{txid}"))
        yield from self._pop_paths(fctx, pop_paths, txid)
        self._pass_fence(msg)
        return None

    def _ack_after(self, fctx, msg: Dict[str, Any], txid: int,
                   events: List) -> Generator:
        pending = [ev for ev in events if not ev.processed]
        if pending:
            yield AllOf(fctx.env, pending)
        yield from self._notify_success(fctx, msg, txid)
        return None

    # ------------------------------------------------------------ shared steps
    def _consume_watches(self, fctx,
                         pairs: List[Tuple[str, str, bool]]) -> Generator:
        """Step ➍ prelude: query + consume the watches the affected paths
        trigger.  Node and parent are independent system-store items, so a
        sharded (or distributor) deployment runs their round trips in
        parallel; the paper configuration keeps them sequential so its
        calibrated latency split stays intact."""
        env = fctx.env
        t0 = env.now
        triggered: List = []
        if self.service.config.watch_parallel_enabled and len(pairs) > 1:
            procs = [env.process(
                self.service.watch_registry.query_consume(
                    fctx.ctx, path, op, is_parent),
                name=f"watch:{path}") for path, op, is_parent in pairs]
            yield AllOf(env, procs)
            for proc in procs:
                triggered.extend(proc.value)
        else:
            for path, op, is_parent in pairs:
                witem = yield from self.service.watch_registry.query(
                    fctx.ctx, path)
                found = yield from self.service.watch_registry.consume(
                    fctx.ctx, path, op, is_parent, witem)
                triggered.extend(found)
        fctx.record("watch_query", env.now - t0)
        return triggered

    def _consume_watches_multi(self, fctx,
                               op_pairs: Dict[str, List[Tuple[str, bool]]]
                               ) -> Generator:
        """Step ➍ for a multi: one query/consume per touched path, in
        parallel when the deployment allows it."""
        env = fctx.env
        t0 = env.now
        triggered: List = []
        if self.service.config.watch_parallel_enabled and len(op_pairs) > 1:
            procs = [env.process(
                self.service.watch_registry.query_consume_ops(
                    fctx.ctx, path, pairs),
                name=f"watch:{path}") for path, pairs in op_pairs.items()]
            yield AllOf(env, procs)
            for proc in procs:
                triggered.extend(proc.value)
        else:
            for path, pairs in op_pairs.items():
                witem = yield from self.service.watch_registry.query(
                    fctx.ctx, path)
                found = yield from self.service.watch_registry.consume_ops(
                    fctx.ctx, path, pairs, witem)
                triggered.extend(found)
        fctx.record("watch_query", env.now - t0)
        return triggered

    def _pop_paths(self, fctx, paths: List[str], txid: int) -> Generator:
        env = fctx.env
        t0 = env.now
        for path in paths:
            try:
                yield from self.service.system_store.update_item(
                    fctx.ctx, SYSTEM_NODES, path,
                    updates=[ListRemove("transactions", [txid]),
                             Set("applied_tx", txid)],
                    condition=Attr("applied_tx").not_exists()
                    | (Attr("applied_tx") < txid),
                    payload_kb=0.032,
                )
            except ConditionFailed:  # pragma: no cover - concurrent watermark
                pass
        fctx.record("pop", env.now - t0)
        return None

    # ------------------------------------------------------------ multi
    def _process_multi(self, fctx, msg: Dict[str, Any],
                       skip_paths: FrozenSet[str]) -> Generator:
        """Algorithm 2 for an atomic batch: verify the batch txid once,
        gate every touched path, replicate per-path final images, fire
        watches exactly once per instance with the batch txid, answer with
        one response carrying per-op results, and pop the txid everywhere.
        """
        env = fctx.env
        txid = msg["_seq"]
        primary = msg["path"]
        sys_store = self.service.system_store

        yield from self._wait_fence(msg)
        defer = bool(skip_paths)
        # The follower computes the per-path plan at staging time and ships
        # it in the envelope; rebuild only for messages that predate the
        # handoff (older queue payloads in long-running simulations).
        affected = (msg.get("replication_plan")
                    or multi_replication_plan(msg["subs"]))
        commit_paths = msg["commit_paths"]

        # ➊ verify commit status on the primary path: the batch committed
        # atomically, so one path's watermark speaks for all of it
        t0 = env.now
        node = yield from sys_store.get_item(fctx.ctx, SYSTEM_NODES, primary)
        fctx.record("get_node", env.now - t0)
        node = node or {}
        if node.get("applied_tx", 0) >= txid:
            # Redelivered after a partial batch: already replicated.
            for path, image, is_parent, op in affected:
                if path in skip_paths:
                    self._skipped_images[path] = (image, txid, op, is_parent)
            yield from self._queue_success(fctx, msg, txid, defer)
            self._pass_fence(msg)
            return None
        pending = node.get("transactions", [])
        if txid not in pending:
            committed = yield from self._try_commit_multi(fctx, msg, txid)
            if not committed:
                yield from self._flush_superseded(
                    fctx, [path for path, _image, _meta, _op in affected])
                yield from self._queue_failure(fctx, msg, "system_failure", defer)
                self._pass_fence(msg)
                return None
        elif pending[0] != txid:
            raise RetryBatch(f"txid {txid} behind {pending[0]} on {primary}")

        # Durable commit log (one record for the whole atomic batch).
        if self.service.snapshots is not None:
            yield from self.service.snapshots.append_log(
                fctx, txid, self.shard, list(affected),
                session=msg.get("session"))
            fctx.crash_point("leader_after_log")

        # A cross-shard multi rides the coordinator's queue, but other
        # shards keep writing the same paths: wait until the batch txid
        # heads every touched path's pending list (per-path total order).
        if self.sharded:
            for path in commit_paths:
                if path != primary:
                    yield from self._await_path_turn(fctx, path, txid)

        # ➍ prep: which watch types each touched path triggers
        op_pairs: Dict[str, List[Tuple[str, bool]]] = {}
        for sub in msg["subs"]:
            if sub["op"] == "check":
                continue
            op_pairs.setdefault(sub["path"], []).append((sub["op"], False))
            if sub.get("parent"):
                op_pairs.setdefault(sub["parent"], []).append((sub["op"], True))

        # Distributor stage: the whole batch rides one distribution record.
        if self.distribution is not None:
            pairs = [(path, op, is_parent)
                     for path, pair_list in op_pairs.items()
                     for op, is_parent in pair_list]
            yield from self._distribute_and_finish(
                fctx, msg, txid, list(affected), pairs, commit_paths)
            return None

        # ➌ replicate per-path final images, all regions in parallel (one
        # epoch snapshot per region per message)
        t0 = env.now
        data_kb = sum(len(sub["node_image"].get("data", b"") or b"") / 1024.0
                      for sub in msg["subs"] if sub["op"] != "check")
        yield fctx.compute(base_ms=0.3, payload_kb=data_kb, per_kb_ms=0.12)
        epochs = {region: self.epoch_snapshot(region)
                  for region in self.service.config.regions}
        procs = []
        for path, image, is_parent, op in affected:
            if path in skip_paths:
                self._skipped_images[path] = (image, txid, op, is_parent)
                continue
            self._skipped_images.pop(path, None)
            for region in self.service.config.regions:
                procs.append(env.process(
                    self._replicate(fctx, region, path, image, epochs[region],
                                    txid, op, is_parent),
                    name=f"replicate:{path}@{region}"))
        if procs:
            yield AllOf(env, procs)
        fctx.record("update_user", env.now - t0)

        # ➍ watches: one query/consume per touched path; every instance
        # fires exactly once per committed multi, with the batch txid
        triggered = yield from self._consume_watches_multi(fctx, op_pairs)
        if triggered:
            watch_ids = [t.watch_id for t in triggered]
            yield from self.service.epoch_ledger.add(fctx.ctx, watch_ids)
            done = self.service.invoke_watch_fn(triggered, txid, shard=self.shard)
            cb = env.process(
                self.service.epoch_ledger.remove_after(
                    done, watch_ids, self.service.system_ctx),
                name="watch-callback")
            self._pending_callbacks.append(cb)

        # ➎ notify (one response, per-op results) + pop the batch txid
        yield from self._queue_success(fctx, msg, txid, defer)
        yield from self._pop_paths(fctx, commit_paths, txid)
        self._pass_fence(msg)
        return None

    def _try_commit_multi(self, fctx, msg: Dict[str, Any],
                          txid: int) -> Generator[Any, Any, bool]:
        """Step ➋ for a multi: commit the whole batch on behalf of a
        (presumably dead) follower, or reject it — never partially (Z1).

        The merged per-path updates are the exact transaction the follower
        would have applied (:func:`merge_multi_commit` is shared), guarded
        by the preconditions each member validated against: data version
        for set/check/delete first-touches, the parent's child-list version
        for create/delete, and expired locks everywhere.
        """
        env = fctx.env
        t0 = env.now
        order, merged = merge_multi_commit(msg["subs"])
        max_hold = self.service.config.lock_max_hold_ms
        for path in order:
            item = yield from self.service.system_store.get_item(
                fctx.ctx, SYSTEM_NODES, path)
            lock_ts = ((item or {}).get("lock") or {}).get("ts")
            if lock_ts is not None and env.now - lock_ts < max_hold:
                fctx.record("try_commit", env.now - t0)
                raise RetryBatch(f"lock live on {path} for multi txid {txid}")
        applied_before = Attr("applied_tx").not_exists() | (
            Attr("applied_tx") < txid)
        ops = []
        for path in order:
            rec = merged[path]
            guard = Attr("lock.ts").not_exists() | (
                Attr("lock.ts") <= env.now - max_hold)
            if path == msg["path"]:
                guard = guard & applied_before & (
                    ~Attr("transactions").contains(txid))
            if rec["prev_version"] is not None:
                guard = guard & (Attr("version") == rec["prev_version"])
            if rec["parent_prev_cversion"] is not None:
                # Guard the child list like single-op TryCommit does —
                # also when the path is node-written by this same multi
                # (a concurrent child create bumps cversion, not version).
                guard = guard & (Attr("cversion") == rec["parent_prev_cversion"])
            updates = [Set(k, v) for k, v in rec["sets"].items()]
            if rec["node"]:
                updates.append(Set("modified_tx", txid))
                if rec["created"]:
                    updates.append(Set("created_tx", txid))
            if rec["node"] or rec["sets"]:
                updates.append(ListAppend("transactions", [txid]))
            ops.append((SYSTEM_NODES, path, updates, guard))
        try:
            yield from self.service.system_store.transact_update(fctx.ctx, ops)
            fctx.record("try_commit", env.now - t0)
            return True
        except ConditionFailed:
            pass
        # Re-read: the follower may have committed while we tried.
        fresh = yield from self.service.system_store.get_item(
            fctx.ctx, SYSTEM_NODES, msg["path"])
        fresh = fresh or {}
        fctx.record("try_commit", env.now - t0)
        if txid in fresh.get("transactions", []) or \
                fresh.get("applied_tx", 0) >= txid:
            return True
        if (fresh.get("lock") or {}).get("ts") is not None and \
                env.now - fresh["lock"]["ts"] < max_hold:
            raise RetryBatch(f"lock re-taken on {msg['path']}")
        return False

    # ------------------------------------------------------------ steps
    def _await_path_turn(self, fctx, path: str, txid: int) -> Generator:
        """Per-path replication order for paths other shards also write
        (cross-shard parents, a cross-shard multi's members): proceed only
        when ``txid`` heads the path's pending list (or was popped by a
        prior delivery of this message)."""
        item = yield from self.service.system_store.get_item(
            fctx.ctx, SYSTEM_NODES, path)
        pending = (item or {}).get("transactions", [])
        if txid in pending and pending[0] != txid:
            raise RetryBatch(f"txid {txid} behind {pending[0]} on {path}")
        return None

    def _try_commit(self, fctx, msg: Dict[str, Any], txid: int,
                    node: Dict[str, Any]) -> Generator[Any, Any, bool]:
        """Step ➋: commit on behalf of a (presumably dead) follower.

        Returns True when the transaction is committed (by us or, as we
        raced, by the recovering follower); False when the request is
        definitively rejected (the caller notifies the client).  Raises
        :class:`RetryBatch` while the follower's lease is still live.
        """
        env = fctx.env
        t0 = env.now
        lock_ts = (node.get("lock") or {}).get("ts")
        max_hold = self.service.config.lock_max_hold_ms
        if lock_ts is not None and env.now - lock_ts < max_hold:
            fctx.record("try_commit", env.now - t0)
            raise RetryBatch(f"lock live on {msg['path']} for txid {txid}")

        lock_free = Attr("lock.ts").not_exists() | (
            Attr("lock.ts") <= env.now - max_hold)
        applied_before = Attr("applied_tx").not_exists() | (Attr("applied_tx") < txid)
        guard = lock_free & applied_before & (
            ~Attr("transactions").contains(txid))
        if msg["op"] == "set_data":
            guard = guard & (Attr("version") == msg["prev_version"])
        elif msg.get("parent_prev_cversion") is not None:
            # create/delete: the node-side guard is implied by the parent's
            # child-list version, which any conflicting operation must bump.
            pass

        ops = []
        node_updates = [Set(k, v) for k, v in msg["commit_sets"].items()]
        if msg["op"] == "create":
            node_updates += [Set("created_tx", txid), Set("modified_tx", txid)]
        else:
            node_updates += [Set("modified_tx", txid)]
        node_updates.append(ListAppend("transactions", [txid]))
        ops.append((SYSTEM_NODES, msg["path"], node_updates, guard))
        if msg.get("parent"):
            parent_lock_free = Attr("lock.ts").not_exists() | (
                Attr("lock.ts") <= env.now - max_hold)
            parent_guard = parent_lock_free & (
                Attr("cversion") == msg["parent_prev_cversion"])
            parent_updates = [Set(k, v) for k, v in msg["parent_sets"].items()]
            parent_updates.append(ListAppend("transactions", [txid]))
            ops.append((SYSTEM_NODES, msg["parent"], parent_updates, parent_guard))
        try:
            yield from self.service.system_store.transact_update(fctx.ctx, ops)
            fctx.record("try_commit", env.now - t0)
            return True
        except ConditionFailed:
            pass
        # Re-read: the follower may have committed while we tried.
        fresh = yield from self.service.system_store.get_item(
            fctx.ctx, SYSTEM_NODES, msg["path"])
        fresh = fresh or {}
        fctx.record("try_commit", env.now - t0)
        if txid in fresh.get("transactions", []) or fresh.get("applied_tx", 0) >= txid:
            return True
        if (fresh.get("lock") or {}).get("ts") is not None and \
                env.now - fresh["lock"]["ts"] < max_hold:
            raise RetryBatch(f"lock re-taken on {msg['path']}")
        return False

    def _replicate(self, fctx, region: str, path: str,
                   image: Optional[Dict[str, Any]], epoch: List[str],
                   txid: int, op: str, is_parent: bool) -> Generator:
        yield from write_user_image(self.service.user_store, fctx, region,
                                    path, image, epoch, txid, op, is_parent)
        return None

    def _notify_success(self, fctx, msg: Dict[str, Any], txid: int) -> Generator:
        env = fctx.env
        t0 = env.now
        if msg["rid"] >= 0:
            if msg["op"] == "multi":
                # One response for the whole batch, carrying the per-op
                # results stamped with the shared transaction id.
                yield from self.service.notify_response(Response(
                    session=msg["session"], rid=msg["rid"], ok=True,
                    path=msg["path"], txid=txid, version=0,
                    results=[dict(res, ok=True, txid=txid)
                             for res in msg["results"]],
                ))
            else:
                image = msg["node_image"]
                yield from self.service.notify_response(Response(
                    session=msg["session"], rid=msg["rid"], ok=True,
                    path=msg["path"], txid=txid,
                    version=image.get("version", 0) if not image.get("deleted") else 0,
                ))
        fctx.record("notify", env.now - t0)
        return None

    def _notify_failure(self, msg: Dict[str, Any], error: str) -> Generator:
        yield from self.service.notify_response(Response(
            session=msg["session"], rid=msg["rid"], ok=False, error=error))
        return None
