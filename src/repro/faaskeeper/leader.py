"""The leader function (Algorithm 2), one instance per shard.

A FIFO queue per shard feeds a leader instance with committed updates in
txid order.  For each update the leader

➊ reads the system node and verifies the transaction is at the head of the
  node's pending list,
➋ if the follower died between push and commit, tries to commit on its
  behalf (TryCommit) once the lock lease has expired — otherwise the update
  is rejected and the client notified of the failure,
➌ replicates the staged node image (and the parent's, for create/delete)
  into the user store of every region in parallel, attaching the current
  epoch (the watch notifications still in flight),
➍ consumes triggered watches, adds their ids to the epoch counters and
  invokes the watch fan-out function,
➎ notifies the client of success and pops the transaction.

Ambiguous states (lock still held by a live follower) raise, making the
FIFO queue redeliver the batch; the ``applied_tx`` watermark makes
redeliveries idempotent.

Sharded-pipeline extensions (disabled at ``leader_shards=1``, which runs
the paper's single-leader Algorithm 2 unchanged):

* **session fences** — a session's writes may land on different shards;
  each message carries a session-sequence fence and a leader only starts a
  message after the session's previous write finished on whichever shard
  owns it, so commits and user-store visibility follow request order (Z2);
* **parent replication gate** — the root is the parent of every top-level
  node and is therefore written by several shards; before replicating a
  parent image the leader waits until its txid reaches the head of the
  parent's pending-transaction list, giving a per-path total order;
* **write coalescing** — inside one delivery batch (bounded by the SQS
  ``fifo_batch_limit`` calibration) a user-store write superseded by a
  later write to the same path is skipped; the corresponding client
  notifications are held back until the superseding write has landed, so
  acknowledged data is always readable.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Generator, List, Optional, Tuple

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, ListAppend, ListRemove, Set
from ..sim.kernel import AllOf
from .layout import SYSTEM_NODES
from .model import Response

__all__ = ["LeaderLogic", "RetryBatch"]


class RetryBatch(Exception):
    """Raised to make the FIFO queue redeliver the current batch."""


class LeaderLogic:
    """Behaviour of one leader shard's function, bound to one deployment."""

    def __init__(self, service, shard: int = 0) -> None:
        self.service = service
        self.shard = shard
        # Leader instances are sticky (warm sandbox); the epoch counters are
        # cached by the shared ledger and hydrated lazily after cold starts.
        self._epoch_loaded = False
        self._pending_callbacks: List = []
        # Per-invocation coalescing state (reset in handler()).
        self._deferred: List[Tuple[str, Dict[str, Any], Any]] = []
        self._skipped_images: Dict[str, Tuple[Optional[Dict[str, Any]], int, str, bool]] = {}

    # ------------------------------------------------------------ epoch
    @property
    def sharded(self) -> bool:
        return self.service.config.leader_shards > 1

    def _load_epoch(self, fctx) -> Generator:
        if not self._epoch_loaded:
            yield from self.service.epoch_ledger.load(fctx.ctx)
            self._epoch_loaded = True
        return None

    def epoch_snapshot(self, region: str) -> List[str]:
        return self.service.epoch_ledger.snapshot(region)

    # ------------------------------------------------------------ fences
    def _wait_fence(self, msg: Dict[str, Any]) -> Generator:
        """Hold the message until the session's previous write (possibly on
        another shard) has been applied."""
        board = self.service.fence_board
        fence = msg.get("fence")
        if board is None or fence is None:
            return None
        yield from board.wait_turn(msg["session"], fence)
        return None

    def _pass_fence(self, msg: Dict[str, Any]) -> None:
        # Fences advance as soon as the message's processing is decided —
        # never deferred, or two shard leaders holding back fences for each
        # other's batches would deadlock.  A coalesced (skipped) write is
        # not yet readable when its fence passes; its client *notification*
        # is what gets deferred until the superseding write lands, and the
        # client library refuses to start a read before all earlier write
        # responses arrived, preserving read-your-writes.
        board = self.service.fence_board
        fence = msg.get("fence")
        if board is None or fence is None:
            return
        board.advance(msg["session"], fence)

    # ------------------------------------------------------------ coalescing
    def _coalesce_plan(self, batch: List[Dict[str, Any]]
                       ) -> Dict[int, FrozenSet[str]]:
        """Last-writer-wins write coalescing inside one delivery batch.

        Returns ``{message index: paths whose user-store write is skipped}``.
        A node-image write is superseded by a later node-image write to the
        same path (the staged images are produced under the node lock, so a
        later batch position implies a later commit); a parent metadata
        update is superseded by any later write to the parent's path.
        """
        if not self.service.config.coalesce_enabled or len(batch) < 2:
            return {}
        last_image: Dict[str, int] = {}
        last_meta: Dict[str, int] = {}
        for i, msg in enumerate(batch):
            last_image[msg["path"]] = i
            if msg.get("parent"):
                last_meta[msg["parent"]] = i
        plan: Dict[int, FrozenSet[str]] = {}
        for i, msg in enumerate(batch):
            skip = set()
            if last_image[msg["path"]] > i:
                skip.add(msg["path"])
            parent = msg.get("parent")
            if parent and max(last_image.get(parent, -1), last_meta[parent]) > i:
                skip.add(parent)
            if skip:
                plan[i] = frozenset(skip)
        return plan

    def _queue_success(self, fctx, msg: Dict[str, Any], txid: int,
                       defer: bool) -> Generator:
        if defer:
            self._deferred.append(("ok", msg, txid))
            return None
        yield from self._notify_success(fctx, msg, txid)
        return None

    def _queue_failure(self, fctx, msg: Dict[str, Any], error: str,
                       defer: bool) -> Generator:
        if defer:
            self._deferred.append(("fail", msg, error))
            return None
        yield from self._notify_failure(msg, error)
        return None

    def _flush_superseded(self, fctx, paths: List[str]) -> Generator:
        """A message whose writes would have superseded earlier skipped ones
        was rejected: replay the newest skipped image for those paths so
        every acknowledged write is user-visible."""
        env = fctx.env
        procs = []
        for path in paths:
            entry = self._skipped_images.pop(path, None)
            if entry is None:
                continue
            image, image_txid, op, is_parent = entry
            for region in self.service.config.regions:
                procs.append(env.process(
                    self._replay(fctx, region, path, image, image_txid,
                                 op, is_parent),
                    name=f"replay:{path}@{region}"))
        if procs:
            yield AllOf(env, procs)
        return None

    def _replay(self, fctx, region: str, path: str,
                image: Optional[Dict[str, Any]], image_txid: int,
                op: str, is_parent: bool) -> Generator:
        if is_parent and image is not None and not image.get("deleted"):
            # A cross-shard writer (the root is a shared parent) may have
            # replicated a newer parent image since this one was skipped;
            # never clobber it with stale metadata.
            existing = yield from self.service.user_store.read_node(
                fctx.ctx, region, path)
            if existing is not None and \
                    existing.get("cversion", 0) >= image.get("cversion", 0):
                return None
        yield from self._replicate(fctx, region, path, image,
                                   self.epoch_snapshot(region),
                                   image_txid, op, is_parent)
        return None

    # ------------------------------------------------------------ handler
    def handler(self, fctx, batch: List[Dict[str, Any]]) -> Generator:
        fctx.crash_point("leader_entry")
        yield from self._load_epoch(fctx)
        self._pending_callbacks = []
        self._deferred = []
        self._skipped_images = {}
        plan = self._coalesce_plan(batch)
        for i, msg in enumerate(batch):
            yield from self.process(fctx, msg,
                                    skip_paths=plan.get(i, frozenset()))
        # Flush completions of coalesced messages: every superseding write
        # of this batch has landed by now, so an acknowledged write is
        # always readable.
        for kind, msg, payload in self._deferred:
            if kind == "ok":
                yield from self._notify_success(fctx, msg, payload)
            else:
                yield from self._notify_failure(msg, payload)
        self._deferred = []
        self._skipped_images = {}
        # WaitAll(WatchCallback): the instance lingers until all of its
        # notifications are delivered and cleared from the epoch.
        if self._pending_callbacks:
            yield AllOf(fctx.env, self._pending_callbacks)
        self._pending_callbacks = []
        return None

    def process(self, fctx, msg: Dict[str, Any],
                skip_paths: FrozenSet[str] = frozenset()) -> Generator:
        env = fctx.env
        txid = msg["_seq"]
        path = msg["path"]
        sys_store = self.service.system_store

        yield from self._wait_fence(msg)
        # A message whose write is skipped (superseded within this batch)
        # must not be acknowledged before the superseding write lands: its
        # notification is emitted at batch end instead.
        defer = bool(skip_paths)

        affected = [(path, msg["node_image"], False)]
        if msg.get("parent"):
            affected.append((msg["parent"], msg["parent_image"], True))

        # ➊ verify commit status
        t0 = env.now
        node = yield from sys_store.get_item(fctx.ctx, SYSTEM_NODES, path)
        fctx.record("get_node", env.now - t0)
        node = node or {}
        if node.get("applied_tx", 0) >= txid:
            # Redelivered after a partial batch: already replicated (or
            # skipped — re-record skipped images so a later rejection in
            # this batch can still replay them).
            for target_path, image, is_parent in affected:
                if target_path in skip_paths:
                    self._skipped_images[target_path] = (image, txid,
                                                         msg["op"], is_parent)
            yield from self._queue_success(fctx, msg, txid, defer)
            self._pass_fence(msg)
            return None
        pending = node.get("transactions", [])
        if txid not in pending:
            committed = yield from self._try_commit(fctx, msg, txid, node)
            if not committed:
                # The request was never committed and cannot be: reject (Z1
                # intact).  Earlier writes it would have superseded must
                # become visible after all.
                affected_paths = [path] + ([msg["parent"]] if msg.get("parent") else [])
                yield from self._flush_superseded(fctx, affected_paths)
                yield from self._queue_failure(fctx, msg, "system_failure", defer)
                self._pass_fence(msg)
                return None
        elif pending[0] != txid:
            # Predecessor still unpopped — should not happen under FIFO
            # delivery, but redelivery is always safe.
            raise RetryBatch(f"txid {txid} behind {pending[0]} on {path}")

        # Sharded: a parent may be written by several shard leaders (the
        # root is every top-level node's parent), so gate its replication
        # on the parent's pending list — per-path writes then follow commit
        # order across shards.
        if self.sharded and msg.get("parent"):
            yield from self._await_parent_turn(fctx, msg["parent"], txid)

        # ➌ replicate to user stores, all regions in parallel
        t0 = env.now
        data_kb = len(msg["node_image"].get("data", b"") or b"") / 1024.0
        yield fctx.compute(base_ms=0.3, payload_kb=data_kb, per_kb_ms=0.12)
        procs = []
        for target_path, image, is_parent in affected:
            if target_path in skip_paths:
                self._skipped_images[target_path] = (image, txid, msg["op"],
                                                     is_parent)
                continue
            self._skipped_images.pop(target_path, None)
            for region in self.service.config.regions:
                epoch = self.epoch_snapshot(region)
                procs.append(env.process(
                    self._replicate(fctx, region, target_path, image, epoch,
                                    txid, msg["op"], is_parent),
                    name=f"replicate:{target_path}@{region}"))
        if procs:
            yield AllOf(env, procs)
        fctx.record("update_user", env.now - t0)

        # ➍ watches: query + consume + fan out
        t0 = env.now
        triggered: List = []
        for target_path, _image, is_parent in affected:
            witem = yield from self.service.watch_registry.query(fctx.ctx, target_path)
            found = yield from self.service.watch_registry.consume(
                fctx.ctx, target_path, msg["op"], is_parent, witem)
            triggered.extend(found)
        fctx.record("watch_query", env.now - t0)
        if triggered:
            watch_ids = [t.watch_id for t in triggered]
            yield from self.service.epoch_ledger.add(fctx.ctx, watch_ids)
            done = self.service.invoke_watch_fn(triggered, txid, shard=self.shard)
            cb = env.process(
                self.service.epoch_ledger.remove_after(
                    done, watch_ids, self.service.system_ctx),
                name="watch-callback")
            self._pending_callbacks.append(cb)

        # ➎ notify + pop
        yield from self._queue_success(fctx, msg, txid, defer)
        t0 = env.now
        for target_path, _image, _is_parent in affected:
            try:
                yield from sys_store.update_item(
                    fctx.ctx, SYSTEM_NODES, target_path,
                    updates=[ListRemove("transactions", [txid]),
                             Set("applied_tx", txid)],
                    condition=Attr("applied_tx").not_exists()
                    | (Attr("applied_tx") < txid),
                    payload_kb=0.032,
                )
            except ConditionFailed:  # pragma: no cover - concurrent watermark
                pass
        fctx.record("pop", env.now - t0)
        self._pass_fence(msg)
        return None

    # ------------------------------------------------------------ steps
    def _await_parent_turn(self, fctx, parent: str, txid: int) -> Generator:
        """Per-path replication order for cross-shard parents: proceed only
        when ``txid`` heads the parent's pending list (or was popped by a
        prior delivery of this message)."""
        item = yield from self.service.system_store.get_item(
            fctx.ctx, SYSTEM_NODES, parent)
        pending = (item or {}).get("transactions", [])
        if txid in pending and pending[0] != txid:
            raise RetryBatch(f"txid {txid} behind {pending[0]} on parent {parent}")
        return None

    def _try_commit(self, fctx, msg: Dict[str, Any], txid: int,
                    node: Dict[str, Any]) -> Generator[Any, Any, bool]:
        """Step ➋: commit on behalf of a (presumably dead) follower.

        Returns True when the transaction is committed (by us or, as we
        raced, by the recovering follower); False when the request is
        definitively rejected (the caller notifies the client).  Raises
        :class:`RetryBatch` while the follower's lease is still live.
        """
        env = fctx.env
        t0 = env.now
        lock_ts = (node.get("lock") or {}).get("ts")
        max_hold = self.service.config.lock_max_hold_ms
        if lock_ts is not None and env.now - lock_ts < max_hold:
            fctx.record("try_commit", env.now - t0)
            raise RetryBatch(f"lock live on {msg['path']} for txid {txid}")

        lock_free = Attr("lock.ts").not_exists() | (
            Attr("lock.ts") <= env.now - max_hold)
        applied_before = Attr("applied_tx").not_exists() | (Attr("applied_tx") < txid)
        guard = lock_free & applied_before & (
            ~Attr("transactions").contains(txid))
        if msg["op"] == "set_data":
            guard = guard & (Attr("version") == msg["prev_version"])
        elif msg.get("parent_prev_cversion") is not None:
            # create/delete: the node-side guard is implied by the parent's
            # child-list version, which any conflicting operation must bump.
            pass

        ops = []
        node_updates = [Set(k, v) for k, v in msg["commit_sets"].items()]
        if msg["op"] == "create":
            node_updates += [Set("created_tx", txid), Set("modified_tx", txid)]
        else:
            node_updates += [Set("modified_tx", txid)]
        node_updates.append(ListAppend("transactions", [txid]))
        ops.append((SYSTEM_NODES, msg["path"], node_updates, guard))
        if msg.get("parent"):
            parent_lock_free = Attr("lock.ts").not_exists() | (
                Attr("lock.ts") <= env.now - max_hold)
            parent_guard = parent_lock_free & (
                Attr("cversion") == msg["parent_prev_cversion"])
            parent_updates = [Set(k, v) for k, v in msg["parent_sets"].items()]
            parent_updates.append(ListAppend("transactions", [txid]))
            ops.append((SYSTEM_NODES, msg["parent"], parent_updates, parent_guard))
        try:
            yield from self.service.system_store.transact_update(fctx.ctx, ops)
            fctx.record("try_commit", env.now - t0)
            return True
        except ConditionFailed:
            pass
        # Re-read: the follower may have committed while we tried.
        fresh = yield from self.service.system_store.get_item(
            fctx.ctx, SYSTEM_NODES, msg["path"])
        fresh = fresh or {}
        fctx.record("try_commit", env.now - t0)
        if txid in fresh.get("transactions", []) or fresh.get("applied_tx", 0) >= txid:
            return True
        if (fresh.get("lock") or {}).get("ts") is not None and \
                env.now - fresh["lock"]["ts"] < max_hold:
            raise RetryBatch(f"lock re-taken on {msg['path']}")
        return False

    def _replicate(self, fctx, region: str, path: str,
                   image: Optional[Dict[str, Any]], epoch: List[str],
                   txid: int, op: str, is_parent: bool) -> Generator:
        store = self.service.user_store
        if image is None:  # pragma: no cover - defensive
            return None
        if image.get("deleted"):
            yield from store.delete_node(fctx.ctx, region, path)
            return None
        full = dict(image)
        full["epoch"] = epoch
        if not is_parent:
            full["modified_tx"] = txid
            if op == "create":
                full["created_tx"] = txid
            yield from store.write_node(fctx.ctx, region, path, full)
        else:
            # Parent updates touch metadata only (child list, cversion); the
            # leader downloads the node and rewrites it around the existing
            # data (Section 3.2's read-update-write).
            full.pop("meta_only", None)
            yield from store.update_metadata(fctx.ctx, region, path, full)
        return None

    def _notify_success(self, fctx, msg: Dict[str, Any], txid: int) -> Generator:
        env = fctx.env
        t0 = env.now
        if msg["rid"] >= 0:
            image = msg["node_image"]
            yield from self.service.notify_response(Response(
                session=msg["session"], rid=msg["rid"], ok=True,
                path=msg["path"], txid=txid,
                version=image.get("version", 0) if not image.get("deleted") else 0,
            ))
        fctx.record("notify", env.now - t0)
        return None

    def _notify_failure(self, msg: Dict[str, Any], error: str) -> Generator:
        yield from self.service.notify_response(Response(
            session=msg["session"], rid=msg["rid"], ok=False, error=error))
        return None
