"""The follower function (Algorithm 1).

A FIFO queue per client session invokes the follower with a batch of
requests.  For each request the follower

➀ acquires timed locks on the affected nodes (the parent too for
  create/delete — those operations touch the parent's child list),
➁ validates the operation against the locked system-node images,
➂ pushes the staged change to the leader's FIFO queue, obtaining the
  transaction id (the queue's monotone sequence number), and
➃ commits the staged change to system storage fused with the lock release,
  conditional on the lease still being valid; multi-node operations commit
  as a single storage transaction that succeeds or fails atomically (Z1).

Steps ➀/➁ of a request may overlap with steps ➂/➃ of its predecessor in a
real deployment; requests of one session are never reordered (Z2).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cloud.expressions import (
    Attr,
    ListAppend,
    ListRemove,
    Remove,
    Set,
)
from ..cloud.errors import ConditionFailed
from ..primitives.locks import LockHandle
from .layout import SYSTEM_NODES, SYSTEM_SESSIONS, new_system_node
from .model import Request, Response, acl_allows, parent_path, node_name

__all__ = ["FollowerLogic"]

#: Lock-acquisition retry policy for contended nodes.
LOCK_RETRIES = 60
LOCK_BACKOFF_MS = 30.0


class FollowerLogic:
    """Behaviour of the follower function, bound to one deployment."""

    def __init__(self, service) -> None:
        self.service = service

    # ------------------------------------------------------------ handler
    def handler(self, fctx, batch: List[Dict[str, Any]]) -> Generator:
        """Entry point for the queue trigger: a batch of request dicts."""
        for raw in batch:
            req = Request(**{k: v for k, v in raw.items() if not k.startswith("_")})
            yield from self.process(fctx, req, redelivered=raw.get("_redelivered", False))
        return None

    def process(self, fctx, req: Request, redelivered: bool = False) -> Generator:
        if req.op == "close_session":
            yield from self._close_session(fctx, req)
        elif req.op in ("create", "set_data", "delete"):
            if redelivered and req.rid >= 0:
                # A redelivered request may already be committed (the crash
                # happened after step ➃): the per-session watermark decides.
                sess = yield from self.service.system_store.get_item(
                    fctx.ctx, SYSTEM_SESSIONS, req.session)
                if sess is not None and sess.get("last_rid", 0) >= req.rid:
                    return None  # committed; the leader will notify
            yield from self._write_op(fctx, req)
        else:  # pragma: no cover - defensive
            yield from self.service.notify_response(
                Response(session=req.session, rid=req.rid, ok=False,
                         error="bad_arguments"))
        return None

    # ------------------------------------------------------------ locking
    def _acquire(self, fctx, paths: List[str]
                 ) -> Generator[Any, Any, Optional[Dict[str, LockHandle]]]:
        """Lock all paths (shallowest first); None when contention persists."""
        lock = self.service.node_lock
        ordered = sorted(set(paths), key=lambda p: (p.count("/"), p))
        for _attempt in range(LOCK_RETRIES):
            handles: Dict[str, LockHandle] = {}
            ok = True
            for path in ordered:
                handle = yield from lock.acquire(fctx.ctx, path)
                if handle is None:
                    ok = False
                    break
                handles[path] = handle
            if ok:
                return handles
            for handle in handles.values():
                yield from lock.release(fctx.ctx, handle)
            yield fctx.env.timeout(
                LOCK_BACKOFF_MS * (0.5 + self.service.rng.random()))
        return None

    def _release_all(self, fctx, handles: Dict[str, LockHandle]) -> Generator:
        for handle in handles.values():
            yield from self.service.node_lock.release(fctx.ctx, handle)
        return None

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _node_exists(image: Optional[Dict[str, Any]]) -> bool:
        return bool(image) and image.get("exists") is True

    def _fail(self, req: Request, error: str) -> Generator:
        yield from self.service.notify_response(
            Response(session=req.session, rid=req.rid, ok=False, error=error))
        return None

    # ------------------------------------------------------------ write ops
    def _write_op(self, fctx, req: Request) -> Generator:
        env = fctx.env
        needs_parent = req.op in ("create", "delete")
        parent = parent_path(req.path) if req.path != "/" else None
        if needs_parent and parent is None:
            yield from self._fail(req, "bad_arguments")
            return None

        # ➀ lock
        t0 = env.now
        lock_paths = [req.path] + ([parent] if needs_parent else [])
        handles = yield from self._acquire(fctx, lock_paths)
        fctx.record("lock", env.now - t0)
        if handles is None:
            yield from self._fail(req, "system_busy")
            return None

        node_img = handles[req.path].item or {}
        parent_img = handles[parent].item if needs_parent else None

        # ➁ validate + stage
        plan = self._validate_and_stage(req, node_img, parent_img)
        if isinstance(plan, str):  # error code
            yield from self._release_all(fctx, handles)
            yield from self._fail(req, plan)
            return None
        final_path, msg, commit_sets, parent_sets, session_ops = plan
        fctx.crash_point("after_validate")

        # For sequential creates the node lock was taken on the prefix path;
        # the final path needs its own lock before commit.
        if final_path != req.path:
            handle = yield from self.service.node_lock.acquire(fctx.ctx, final_path)
            if handle is None:  # pragma: no cover - fresh path, cannot be held
                yield from self._release_all(fctx, handles)
                yield from self._fail(req, "system_busy")
                return None
            # Release the prefix lock; the real node is the final path.
            yield from self.service.node_lock.release(fctx.ctx, handles.pop(req.path))
            handles[final_path] = handle

        # ➂ push to the owning shard's leader queue (txid = sequence number,
        # globally monotone across shards via the shared sequence)
        t0 = env.now
        # CPU cost of encoding the payload (base64 in the real system);
        # this is where ARM's data-processing penalty shows up.
        yield fctx.compute(base_ms=0.2, payload_kb=req.size_kb, per_kb_ms=0.05)
        board = self.service.fence_board
        if board is not None:
            # Session-sequence fence: pushes of one session are serialized
            # by its FIFO queue, so fences follow request order; the shard
            # leaders use them to keep cross-shard writes in session order.
            msg["fence"] = board.issue(req.session)
            msg["shard"] = self.service.shard_of(final_path)
            if req.shard_hint is not None and req.shard_hint != msg["shard"]:
                # Routing always uses the shard recomputed from the final
                # path; a disagreeing client hint means a stale partition
                # map (or a sequence suffix remapping a top-level create).
                self.service.shard_hint_mismatches += 1
        txid = yield from self.service.leader_queue_for(final_path).send(
            fctx.ctx, msg, group="updates", size_kb=req.size_kb)
        fctx.record("push", env.now - t0)
        fctx.crash_point("after_push")

        # ➃ commit + unlock, conditional on all leases (single transaction)
        t0 = env.now
        ops = []
        node_handle = handles[final_path]
        node_updates = [Set(k, v) for k, v in commit_sets.items()]
        node_updates += [
            Set("modified_tx", txid) if req.op != "create" else Set("created_tx", txid),
            ListAppend("transactions", [txid]),
            Remove("lock"),
        ]
        if req.op == "create":
            node_updates.append(Set("modified_tx", txid))
        ops.append((SYSTEM_NODES, final_path, node_updates,
                    Attr("lock.ts") == node_handle.timestamp))
        if needs_parent:
            parent_handle = handles[parent]
            parent_updates = [Set(k, v) for k, v in parent_sets.items()]
            parent_updates += [ListAppend("transactions", [txid]), Remove("lock")]
            ops.append((SYSTEM_NODES, parent, parent_updates,
                        Attr("lock.ts") == parent_handle.timestamp))
        # Per-session dedup watermark (one transaction may touch an item only
        # once, so merge with any ephemeral-tracking update).
        session_updates: List = []
        for _table, key, updates in session_ops:
            assert key == req.session
            session_updates.extend(updates)
        if req.rid >= 0:
            session_updates.append(Set("last_rid", req.rid))
        if session_updates:
            ops.append((SYSTEM_SESSIONS, req.session, session_updates, None))
        try:
            yield from self.service.system_store.transact_update(fctx.ctx, ops)
        except ConditionFailed:
            # A lease expired mid-request: the leader will decide the outcome
            # (TryCommit or reject) — the follower must not touch the node.
            fctx.record("commit", env.now - t0)
            return None
        fctx.record("commit", env.now - t0)
        fctx.crash_point("after_commit")
        # The request is now committed (Z1); the leader replicates it to the
        # user-visible store and notifies the client.
        return None

    # ------------------------------------------------------------ staging
    def _validate_and_stage(
        self, req: Request,
        node: Dict[str, Any],
        parent: Optional[Dict[str, Any]],
    ):
        """Returns an error code or (final_path, leader_msg, node_sets,
        parent_sets, session_ops)."""
        if req.op == "set_data":
            if not self._node_exists(node):
                return "no_node"
            if not acl_allows(node.get("acl"), "write", req.session):
                return "access_denied"
            if req.version >= 0 and node.get("version", 0) != req.version:
                return "bad_version"
            if len(req.data) / 1024.0 > self.service.config.max_node_size_kb:
                return "bad_arguments"
            new_version = node.get("version", 0) + 1
            commit_sets = {"data_len": len(req.data), "version": new_version}
            image = {
                "path": req.path,
                "data": req.data,
                "version": new_version,
                "cversion": node.get("cversion", 0),
                "created_tx": node.get("created_tx", 0),
                "children": list(node.get("children", [])),
                "ephemeral_owner": node.get("ephemeral_owner"),
            }
            if node.get("acl"):
                image["acl"] = dict(node["acl"])
            msg = {
                "session": req.session, "rid": req.rid, "op": "set_data",
                "path": req.path, "parent": None,
                "node_image": image, "parent_image": None,
                "commit_sets": commit_sets, "parent_sets": {},
                "prev_version": node.get("version", 0),
                "parent_prev_cversion": None,
            }
            return req.path, msg, commit_sets, {}, []

        if req.op == "create":
            assert parent is not None
            if not self._node_exists(parent):
                return "no_node"
            if parent.get("ephemeral_owner"):
                return "no_children_for_ephemerals"
            if not acl_allows(parent.get("acl"), "create", req.session):
                return "access_denied"
            final_path = req.path
            parent_sets: Dict[str, Any] = {
                "cversion": parent.get("cversion", 0) + 1,
            }
            if req.sequence:
                seq = parent.get("cseq", 0)
                final_path = f"{req.path}{seq:010d}"
                parent_sets["cseq"] = seq + 1
            if self._node_exists(node) and final_path == req.path:
                return "node_exists"
            name = node_name(final_path)
            children = list(parent.get("children", []))
            if name in children:  # pragma: no cover - defensive
                return "node_exists"
            children.append(name)
            parent_sets["children"] = children
            fresh = new_system_node(len(req.data), created_tx=0,
                                    ephemeral_owner=req.session if req.ephemeral else None)
            fresh.pop("transactions")  # managed by the commit itself
            fresh.pop("applied_tx")    # the leader's watermark must survive
            if req.acl:
                fresh["acl"] = dict(req.acl)
            commit_sets = dict(fresh)
            image = {
                "path": final_path, "data": req.data, "version": 0,
                "cversion": 0, "created_tx": 0, "children": [],
                "ephemeral_owner": req.session if req.ephemeral else None,
            }
            if req.acl:
                image["acl"] = dict(req.acl)
            parent_image = {
                "path": parent_path(final_path),
                "meta_only": True,
                "version": parent.get("version", 0),
                "cversion": parent_sets["cversion"],
                "created_tx": parent.get("created_tx", 0),
                "modified_tx": parent.get("modified_tx", 0),
                "children": children,
                "ephemeral_owner": parent.get("ephemeral_owner"),
            }
            session_ops = []
            if req.ephemeral:
                session_ops.append((
                    SYSTEM_SESSIONS, req.session,
                    [ListAppend("ephemeral", [final_path])],
                ))
            msg = {
                "session": req.session, "rid": req.rid, "op": "create",
                "path": final_path, "parent": parent_path(final_path),
                "node_image": image, "parent_image": parent_image,
                "commit_sets": commit_sets, "parent_sets": parent_sets,
                "prev_version": None,
                "parent_prev_cversion": parent.get("cversion", 0),
            }
            return final_path, msg, commit_sets, parent_sets, session_ops

        if req.op == "delete":
            assert parent is not None
            if not self._node_exists(node):
                return "no_node"
            if not acl_allows(node.get("acl"), "delete", req.session):
                return "access_denied"
            if req.version >= 0 and node.get("version", 0) != req.version:
                return "bad_version"
            if node.get("children"):
                return "not_empty"
            name = node_name(req.path)
            children = [c for c in parent.get("children", []) if c != name]
            parent_sets = {
                "children": children,
                "cversion": parent.get("cversion", 0) + 1,
            }
            commit_sets = {"exists": False, "data_len": 0}
            image = {"path": req.path, "deleted": True}
            parent_image = {
                "path": parent_path(req.path),
                "meta_only": True,
                "version": parent.get("version", 0),
                "cversion": parent_sets["cversion"],
                "created_tx": parent.get("created_tx", 0),
                "modified_tx": parent.get("modified_tx", 0),
                "children": children,
                "ephemeral_owner": parent.get("ephemeral_owner"),
            }
            session_ops = []
            owner = node.get("ephemeral_owner")
            if owner:
                session_ops.append((
                    SYSTEM_SESSIONS, owner,
                    [ListRemove("ephemeral", [req.path])],
                ))
            msg = {
                "session": req.session, "rid": req.rid, "op": "delete",
                "path": req.path, "parent": parent_path(req.path),
                "node_image": image, "parent_image": parent_image,
                "commit_sets": commit_sets, "parent_sets": parent_sets,
                "prev_version": node.get("version", 0),
                "parent_prev_cversion": parent.get("cversion", 0),
            }
            return req.path, msg, commit_sets, parent_sets, session_ops

        return "bad_arguments"  # pragma: no cover - defensive

    # ------------------------------------------------------------ sessions
    def _close_session(self, fctx, req: Request) -> Generator:
        """Session teardown: delete owned ephemerals, drop the session."""
        sessions = self.service.system_store
        item = yield from sessions.get_item(fctx.ctx, SYSTEM_SESSIONS, req.session)
        ephemerals = list(item.get("ephemeral", [])) if item else []
        # Deepest paths first so children go before parents.
        for path in sorted(ephemerals, key=lambda p: -p.count("/")):
            sub = Request(session=req.session, rid=-1, op="delete",
                          path=path, version=-1)
            yield from self._write_op(fctx, sub)
        yield from sessions.delete_item(fctx.ctx, SYSTEM_SESSIONS, req.session)
        self.service.on_session_closed(req.session)
        if req.rid >= 0:
            yield from self.service.notify_response(
                Response(session=req.session, rid=req.rid, ok=True))
        return None
