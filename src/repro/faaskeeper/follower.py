"""The follower function (Algorithm 1).

A FIFO queue per client session invokes the follower with a batch of
requests.  For each request the follower

➀ acquires timed locks on the affected nodes (the parent too for
  create/delete — those operations touch the parent's child list),
➁ validates the operation against the locked system-node images,
➂ pushes the staged change to the leader's FIFO queue, obtaining the
  transaction id (the queue's monotone sequence number), and
➃ commits the staged change to system storage fused with the lock release,
  conditional on the lease still being valid; multi-node operations commit
  as a single storage transaction that succeeds or fails atomically (Z1).

Steps ➀/➁ of a request may overlap with steps ➂/➃ of its predecessor in a
real deployment; requests of one session are never reordered (Z2).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cloud.expressions import (
    Attr,
    ListAppend,
    ListRemove,
    Remove,
    Set,
)
from ..cloud.errors import ConditionFailed
from ..primitives.locks import LockHandle
from .exceptions import BadArgumentsError
from .layout import SYSTEM_NODES, SYSTEM_SESSIONS, new_system_node
from .model import (
    Request,
    Response,
    acl_allows,
    node_name,
    operation_from_dict,
    parent_path,
)

__all__ = ["FollowerLogic", "merge_multi_commit", "multi_replication_plan"]

#: Lock-acquisition retry policy for contended nodes.
LOCK_RETRIES = 60
LOCK_BACKOFF_MS = 30.0


def merge_multi_commit(subs: List[Dict[str, Any]]):
    """Fold a multi's staged sub-operations into one per-path update record.

    A storage transaction may touch each item only once, so every path's
    attribute sets are merged in op order (later sets win — the staged
    values were produced against the running overlay, so the last one is
    the final state).  Returns ``(order, merged)`` where ``order`` lists
    the touched paths in first-touch order and ``merged[path]`` holds::

        {"sets":    {attr: value},   # merged attribute sets
         "node":    bool,            # written as a node (gets txid stamps)
         "created": bool,            # final state is a node created here
         "check":   bool,            # touched by a check op
         "prev_version":         data version the FIRST touch observed,
         "parent_prev_cversion": child-list version the first parent
                                 touch observed}

    The ``prev_*`` fields are storage preconditions (TryCommit guards), so
    only the path's FIRST touch may contribute them: later members observe
    overlay state that does not exist in storage yet (a create's follower
    leaves ``prev_version`` None — the parent's child-list guard covers it).

    Shared by the follower (commit ➃) and the leader (TryCommit on behalf
    of a dead follower), so both sides apply the identical transaction.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    touched: set = set()

    def record(path: str) -> Dict[str, Any]:
        if path not in merged:
            merged[path] = {"sets": {}, "node": False, "created": False,
                            "check": False, "prev_version": None,
                            "parent_prev_cversion": None}
            order.append(path)
        return merged[path]

    for sub in subs:
        rec = record(sub["path"])
        if sub["path"] not in touched:
            touched.add(sub["path"])
            rec["prev_version"] = sub.get("prev_version")
        if sub["op"] == "check":
            rec["check"] = True
            continue
        rec["node"] = True
        rec["sets"].update(sub["commit_sets"])
        if sub["op"] == "create":
            rec["created"] = True
        elif sub["op"] == "delete":
            rec["created"] = False
        if sub.get("parent"):
            prec = record(sub["parent"])
            prec["sets"].update(sub["parent_sets"])
            if prec["parent_prev_cversion"] is None and not prec["created"]:
                # Only store-valid observations become guards: a parent
                # created earlier in this batch reports its overlay
                # cversion, which no storage item carries yet.
                prec["parent_prev_cversion"] = sub["parent_prev_cversion"]
    return order, merged


def multi_replication_plan(subs: List[Dict[str, Any]]
                           ) -> List[Tuple[str, Dict[str, Any], bool, str]]:
    """Per-path final user-store actions of a committed multi.

    Several members of one transaction may touch the same path (set after
    set, create then set, a node that is also a sibling's parent): the
    user store needs exactly one write per path, carrying the LAST staged
    node image merged with any later parent-side metadata.  Staged images
    are produced against the follower's running overlay, so the last image
    for a path already reflects every earlier member's effect.

    Returns ``[(path, image, is_parent, op)]`` in first-touch order;
    ``op == "create"`` marks a node whose final state was created by this
    multi (the leader stamps ``created_tx``), ``is_parent`` marks
    metadata-only updates.

    The follower computes the plan once at staging time and hands it to
    the leader inside the envelope (``replication_plan``), so neither the
    leader nor the distributor stage re-derives it per delivery.
    """
    order: List[str] = []
    state: Dict[str, List[Any]] = {}  # path -> [image, is_parent, op]
    for sub in subs:
        if sub["op"] == "check":
            continue
        entries = [(sub["path"], sub["node_image"], False)]
        if sub.get("parent"):
            entries.append((sub["parent"], sub["parent_image"], True))
        for path, image, is_parent in entries:
            cur = state.get(path)
            if cur is None:
                order.append(path)
                state[path] = [dict(image), is_parent, sub["op"]]
            elif not is_parent:
                if image.get("deleted"):
                    state[path] = [dict(image), False, "delete"]
                else:
                    was_created = (not cur[1] and cur[2] == "create"
                                   and not cur[0].get("deleted"))
                    op = ("create" if sub["op"] == "create" or was_created
                          else sub["op"])
                    state[path] = [dict(image), False, op]
            else:
                img, was_parent, op = cur
                if was_parent or img.get("deleted"):
                    state[path] = [dict(image), True, sub["op"]]
                else:
                    # Graft the newer child-list metadata onto the member's
                    # node image: the full image (with data) still wins.
                    img = dict(img)
                    img["children"] = list(image.get("children", []))
                    img["cversion"] = image.get("cversion", 0)
                    state[path] = [img, False, op]
    return [(p, state[p][0], state[p][1], state[p][2]) for p in order]


class FollowerLogic:
    """Behaviour of the follower function, bound to one deployment."""

    def __init__(self, service) -> None:
        self.service = service

    # ------------------------------------------------------------ handler
    def handler(self, fctx, batch: List[Dict[str, Any]]) -> Generator:
        """Entry point for the queue trigger: a batch of request dicts."""
        for raw in batch:
            req = Request(**{k: v for k, v in raw.items() if not k.startswith("_")})
            yield from self.process(fctx, req, redelivered=raw.get("_redelivered", False))
        return None

    def process(self, fctx, req: Request, redelivered: bool = False) -> Generator:
        if req.op == "close_session":
            yield from self._close_session(fctx, req)
        elif req.op in ("create", "set_data", "delete", "multi"):
            if redelivered and req.rid >= 0:
                # A redelivered request may already be committed (the crash
                # happened after step ➃): the per-session watermark decides.
                sess = yield from self.service.system_store.get_item(
                    fctx.ctx, SYSTEM_SESSIONS, req.session)
                if sess is not None and sess.get("last_rid", 0) >= req.rid:
                    return None  # committed; the leader will notify
            if req.op == "multi":
                yield from self._multi_op(fctx, req)
            else:
                yield from self._write_op(fctx, req)
        else:  # pragma: no cover - defensive
            yield from self.service.notify_response(
                Response(session=req.session, rid=req.rid, ok=False,
                         error="bad_arguments"))
        return None

    # ------------------------------------------------------------ locking
    def _acquire(self, fctx, paths: List[str]
                 ) -> Generator[Any, Any, Optional[Dict[str, LockHandle]]]:
        """Lock all paths (shallowest first); None when contention persists."""
        lock = self.service.node_lock
        ordered = sorted(set(paths), key=lambda p: (p.count("/"), p))
        for _attempt in range(LOCK_RETRIES):
            handles: Dict[str, LockHandle] = {}
            ok = True
            for path in ordered:
                handle = yield from lock.acquire(fctx.ctx, path)
                if handle is None:
                    ok = False
                    break
                handles[path] = handle
            if ok:
                return handles
            for handle in handles.values():
                yield from lock.release(fctx.ctx, handle)
            yield fctx.env.timeout(
                LOCK_BACKOFF_MS * (0.5 + self.service.rng.random()))
        return None

    def _release_all(self, fctx, handles: Dict[str, LockHandle]) -> Generator:
        for handle in handles.values():
            yield from self.service.node_lock.release(fctx.ctx, handle)
        return None

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _node_exists(image: Optional[Dict[str, Any]]) -> bool:
        return bool(image) and image.get("exists") is True

    def _fail(self, req: Request, error: str) -> Generator:
        yield from self.service.notify_response(
            Response(session=req.session, rid=req.rid, ok=False, error=error))
        return None

    # ------------------------------------------------------------ write ops
    def _write_op(self, fctx, req: Request) -> Generator:
        env = fctx.env
        needs_parent = req.op in ("create", "delete")
        parent = parent_path(req.path) if req.path != "/" else None
        if needs_parent and parent is None:
            yield from self._fail(req, "bad_arguments")
            return None

        # ➀ lock
        t0 = env.now
        lock_paths = [req.path] + ([parent] if needs_parent else [])
        handles = yield from self._acquire(fctx, lock_paths)
        fctx.record("lock", env.now - t0)
        if handles is None:
            yield from self._fail(req, "system_busy")
            return None

        node_img = handles[req.path].item or {}
        parent_img = handles[parent].item if needs_parent else None

        # ➁ validate + stage
        plan = self._validate_and_stage(req, node_img, parent_img)
        if isinstance(plan, str):  # error code
            yield from self._release_all(fctx, handles)
            yield from self._fail(req, plan)
            return None
        final_path, msg, commit_sets, parent_sets, session_ops = plan
        fctx.crash_point("after_validate")

        # For sequential creates the node lock was taken on the prefix path;
        # the final path needs its own lock before commit.
        if final_path != req.path:
            handle = yield from self.service.node_lock.acquire(fctx.ctx, final_path)
            if handle is None:  # pragma: no cover - fresh path, cannot be held
                yield from self._release_all(fctx, handles)
                yield from self._fail(req, "system_busy")
                return None
            # Release the prefix lock; the real node is the final path.
            yield from self.service.node_lock.release(fctx.ctx, handles.pop(req.path))
            handles[final_path] = handle

        # ➂ push to the owning shard's leader queue (txid = sequence number,
        # globally monotone across shards via the shared sequence)
        t0 = env.now
        # CPU cost of encoding the payload (base64 in the real system);
        # this is where ARM's data-processing penalty shows up.
        yield fctx.compute(base_ms=0.2, payload_kb=req.size_kb, per_kb_ms=0.05)
        board = self.service.fence_board
        if board is not None:
            # Session-sequence fence: pushes of one session are serialized
            # by its FIFO queue, so fences follow request order; the shard
            # leaders use them to keep cross-shard writes in session order.
            msg["fence"] = board.issue(req.session)
            msg["shard"] = self.service.shard_of(final_path)
            if req.shard_hint is not None and req.shard_hint != msg["shard"]:
                # Routing always uses the shard recomputed from the final
                # path; a disagreeing client hint means a stale partition
                # map (or a sequence suffix remapping a top-level create).
                self.service.record_shard_hint_mismatch()
        txid = yield from self.service.leader_queue_for(final_path).send(
            fctx.ctx, msg, group="updates", size_kb=req.size_kb)
        fctx.record("push", env.now - t0)
        fctx.crash_point("after_push")

        # ➃ commit + unlock, conditional on all leases (single transaction)
        t0 = env.now
        ops = []
        node_handle = handles[final_path]
        node_updates = [Set(k, v) for k, v in commit_sets.items()]
        node_updates += [
            Set("modified_tx", txid) if req.op != "create" else Set("created_tx", txid),
            ListAppend("transactions", [txid]),
            Remove("lock"),
        ]
        if req.op == "create":
            node_updates.append(Set("modified_tx", txid))
        ops.append((SYSTEM_NODES, final_path, node_updates,
                    Attr("lock.ts") == node_handle.timestamp))
        if needs_parent:
            parent_handle = handles[parent]
            parent_updates = [Set(k, v) for k, v in parent_sets.items()]
            parent_updates += [ListAppend("transactions", [txid]), Remove("lock")]
            ops.append((SYSTEM_NODES, parent, parent_updates,
                        Attr("lock.ts") == parent_handle.timestamp))
        # Per-session dedup watermark (one transaction may touch an item only
        # once, so merge with any ephemeral-tracking update).
        session_updates: List = []
        for _table, key, updates in session_ops:
            assert key == req.session
            session_updates.extend(updates)
        if req.rid >= 0:
            session_updates.append(Set("last_rid", req.rid))
        if session_updates:
            ops.append((SYSTEM_SESSIONS, req.session, session_updates, None))
        try:
            yield from self.service.system_store.transact_update(fctx.ctx, ops)
        except ConditionFailed:
            # A lease expired mid-request: the leader will decide the outcome
            # (TryCommit or reject) — the follower must not touch the node.
            fctx.record("commit", env.now - t0)
            return None
        fctx.record("commit", env.now - t0)
        fctx.crash_point("after_commit")
        # The request is now committed (Z1); the leader replicates it to the
        # user-visible store and notifies the client.
        return None

    # ------------------------------------------------------------ multi
    def _fail_multi(self, req: Request, error: str,
                    culprit: Optional[int] = None) -> Generator:
        """All-or-nothing rejection: per-op typed outcomes, nothing commits.
        ``culprit`` is the failing op's index (None = envelope-wide error);
        the other members report ``rolled_back``."""
        results = []
        for i, d in enumerate(req.ops or []):
            code = error if culprit is None or i == culprit else "rolled_back"
            results.append({"ok": False, "op": d.get("op"),
                            "path": d.get("path"), "error": code})
        yield from self.service.notify_response(
            Response(session=req.session, rid=req.rid, ok=False, error=error,
                     results=results))
        return None

    def _multi_op(self, fctx, req: Request) -> Generator:
        """Atomic transaction (Algorithm 1 generalized to an op batch).

        The follower's four steps run once for the whole envelope: lock
        every touched node, validate-and-stage each member against a
        running overlay (later members see earlier members' staged
        effects, as in ZooKeeper's multi), push ONE message to the
        coordinator shard's leader queue (one txid, one leader invocation
        for N writes — the cost lever of the paper's per-invocation
        model), and commit everything in ONE storage transaction fused
        with the lock releases (Z1 for the whole batch).
        """
        env = fctx.env
        try:
            ops = [operation_from_dict(d) for d in (req.ops or [])]
        except BadArgumentsError:
            yield from self._fail_multi(req, "bad_arguments")
            return None
        if not ops:
            yield from self._fail_multi(req, "bad_arguments")
            return None

        # ➀ lock every touched node (parents too for create/delete)
        lock_paths = []
        for i, op in enumerate(ops):
            if op.OP in ("create", "delete"):
                if op.path == "/":
                    yield from self._fail_multi(req, "bad_arguments", culprit=i)
                    return None
                lock_paths.append(parent_path(op.path))
            lock_paths.append(op.path)
        t0 = env.now
        handles = yield from self._acquire(fctx, lock_paths)
        fctx.record("lock", env.now - t0)
        if handles is None:
            yield from self._fail_multi(req, "system_busy")
            return None

        # ➁ validate + stage against the overlay of locked images
        overlay = {p: dict(h.item or {}) for p, h in handles.items()}
        subs: List[Dict[str, Any]] = []
        results: List[Dict[str, Any]] = []
        session_ops: List[tuple] = []
        for i, op in enumerate(ops):
            needs_parent = op.OP in ("create", "delete")
            d = op.to_dict()
            sub_req = Request(session=req.session, rid=req.rid, op=op.OP,
                              path=op.path, data=d.get("data", b""),
                              version=d.get("version", -1),
                              ephemeral=d.get("ephemeral", False),
                              sequence=d.get("sequence", False),
                              acl=d.get("acl"))
            node = overlay.get(op.path, {})
            parent = overlay.get(parent_path(op.path)) if needs_parent else None
            plan = self._validate_and_stage(sub_req, node, parent)
            if isinstance(plan, str):  # error code: roll the batch back
                yield from self._release_all(fctx, handles)
                yield from self._fail_multi(req, plan, culprit=i)
                return None
            final_path, msg, commit_sets, parent_sets, op_session_ops = plan
            session_ops.extend(op_session_ops)
            if msg is None:  # check op: a guard, nothing staged
                subs.append({"op": "check", "path": op.path,
                             "prev_version": node.get("version", 0)})
                results.append({"op": "check", "path": op.path,
                                "version": node.get("version", 0)})
                continue
            overlay.setdefault(final_path, {}).update(commit_sets)
            if needs_parent:
                overlay[parent_path(final_path)].update(parent_sets)
            subs.append(msg)
            results.append({"op": op.OP, "path": final_path,
                            "version": commit_sets.get("version", 0)})
        fctx.crash_point("after_validate")

        # A sequential create staged a suffixed final path: it needs its
        # own lock before commit (the prefix lock is released at commit).
        for sub in subs:
            if sub["op"] == "create" and sub["path"] not in handles:
                handle = yield from self.service.node_lock.acquire(
                    fctx.ctx, sub["path"])
                if handle is None:  # pragma: no cover - fresh path, never held
                    yield from self._release_all(fctx, handles)
                    yield from self._fail_multi(req, "system_busy")
                    return None
                handles[sub["path"]] = handle

        order, merged = merge_multi_commit(subs)
        commit_paths = [p for p in order
                        if merged[p]["node"] or merged[p]["sets"]]

        # A guard-only multi (checks alone) never reaches the leader:
        # nothing replicates, so verify under the locks, move the dedup
        # watermark and answer directly from the follower.
        if not commit_paths:
            ops_list = [(SYSTEM_NODES, path, [Remove("lock")],
                         Attr("lock.ts") == handle.timestamp)
                        for path, handle in handles.items()]
            if req.rid >= 0:
                ops_list.append((SYSTEM_SESSIONS, req.session,
                                 [Set("last_rid", req.rid)], None))
            try:
                yield from self.service.system_store.transact_update(
                    fctx.ctx, ops_list)
            except ConditionFailed:
                yield from self._fail_multi(req, "system_failure")
                return None
            yield from self.service.notify_response(
                Response(session=req.session, rid=req.rid, ok=True,
                         results=[dict(r, ok=True, txid=0) for r in results]))
            return None

        primary = commit_paths[0]

        # ➂ ONE push to the coordinator shard's leader queue: one txid and
        # one leader invocation amortized over the whole batch
        t0 = env.now
        yield fctx.compute(base_ms=0.2, payload_kb=req.size_kb, per_kb_ms=0.05)
        written = [p for p in order if merged[p]["node"]]
        leader_msg = {
            "session": req.session, "rid": req.rid, "op": "multi",
            "path": primary, "parent": None,
            "subs": subs, "results": results, "commit_paths": commit_paths,
            "replication_plan": multi_replication_plan(subs),
        }
        board = self.service.fence_board
        shard = self.service.multi_shard_of(written)
        if board is not None:
            leader_msg["fence"] = board.issue(req.session)
            leader_msg["shard"] = shard
            if req.shard_hint is not None and req.shard_hint != shard:
                self.service.record_shard_hint_mismatch()
        txid = yield from self.service.leader_queues[shard].send(
            fctx.ctx, leader_msg, group="updates", size_kb=req.size_kb)
        fctx.record("push", env.now - t0)
        fctx.crash_point("after_push")

        # ➃ ONE atomic commit: every touched path plus the session
        # watermark, all conditioned on the lock leases (batch-wide Z1)
        t0 = env.now
        ops_list = []
        for path in order:
            rec = merged[path]
            handle = handles[path]
            updates = [Set(k, v) for k, v in rec["sets"].items()]
            if rec["node"]:
                updates.append(Set("modified_tx", txid))
                if rec["created"]:
                    updates.append(Set("created_tx", txid))
            if path in commit_paths:
                updates.append(ListAppend("transactions", [txid]))
            updates.append(Remove("lock"))
            ops_list.append((SYSTEM_NODES, path, updates,
                             Attr("lock.ts") == handle.timestamp))
        for path, handle in handles.items():
            if path not in merged:  # e.g. a sequence create's prefix lock
                ops_list.append((SYSTEM_NODES, path, [Remove("lock")],
                                 Attr("lock.ts") == handle.timestamp))
        session_updates: Dict[str, List] = {}
        for _table, key, updates in session_ops:
            session_updates.setdefault(key, []).extend(updates)
        if req.rid >= 0:
            session_updates.setdefault(req.session, []).append(
                Set("last_rid", req.rid))
        for key, updates in session_updates.items():
            ops_list.append((SYSTEM_SESSIONS, key, updates, None))
        try:
            yield from self.service.system_store.transact_update(
                fctx.ctx, ops_list)
        except ConditionFailed:
            # A lease expired mid-batch: the leader decides (TryCommit or
            # reject) — never a partial commit (Z1).
            fctx.record("commit", env.now - t0)
            return None
        fctx.record("commit", env.now - t0)
        fctx.crash_point("after_commit")
        return None

    # ------------------------------------------------------------ staging
    def _validate_and_stage(
        self, req: Request,
        node: Dict[str, Any],
        parent: Optional[Dict[str, Any]],
    ):
        """Returns an error code or (final_path, leader_msg, node_sets,
        parent_sets, session_ops).  A ``check`` op (multi-only guard)
        returns a None leader_msg: it stages nothing."""
        if req.op == "check":
            if not self._node_exists(node):
                return "no_node"
            if not acl_allows(node.get("acl"), "read", req.session):
                return "access_denied"
            if req.version >= 0 and node.get("version", 0) != req.version:
                return "bad_version"
            return req.path, None, {}, {}, []

        if req.op == "set_data":
            if not self._node_exists(node):
                return "no_node"
            if not acl_allows(node.get("acl"), "write", req.session):
                return "access_denied"
            if req.version >= 0 and node.get("version", 0) != req.version:
                return "bad_version"
            if len(req.data) / 1024.0 > self.service.config.max_node_size_kb:
                return "bad_arguments"
            new_version = node.get("version", 0) + 1
            commit_sets = {"data_len": len(req.data), "version": new_version}
            image = {
                "path": req.path,
                "data": req.data,
                "version": new_version,
                "cversion": node.get("cversion", 0),
                "created_tx": node.get("created_tx", 0),
                "children": list(node.get("children", [])),
                "ephemeral_owner": node.get("ephemeral_owner"),
            }
            if node.get("acl"):
                image["acl"] = dict(node["acl"])
            msg = {
                "session": req.session, "rid": req.rid, "op": "set_data",
                "path": req.path, "parent": None,
                "node_image": image, "parent_image": None,
                "commit_sets": commit_sets, "parent_sets": {},
                "prev_version": node.get("version", 0),
                "parent_prev_cversion": None,
            }
            return req.path, msg, commit_sets, {}, []

        if req.op == "create":
            assert parent is not None
            if not self._node_exists(parent):
                return "no_node"
            if parent.get("ephemeral_owner"):
                return "no_children_for_ephemerals"
            if not acl_allows(parent.get("acl"), "create", req.session):
                return "access_denied"
            final_path = req.path
            parent_sets: Dict[str, Any] = {
                "cversion": parent.get("cversion", 0) + 1,
            }
            if req.sequence:
                seq = parent.get("cseq", 0)
                final_path = f"{req.path}{seq:010d}"
                parent_sets["cseq"] = seq + 1
            if self._node_exists(node) and final_path == req.path:
                return "node_exists"
            name = node_name(final_path)
            children = list(parent.get("children", []))
            if name in children:  # pragma: no cover - defensive
                return "node_exists"
            children.append(name)
            parent_sets["children"] = children
            fresh = new_system_node(len(req.data), created_tx=0,
                                    ephemeral_owner=req.session if req.ephemeral else None)
            fresh.pop("transactions")  # managed by the commit itself
            fresh.pop("applied_tx")    # the leader's watermark must survive
            if req.acl:
                fresh["acl"] = dict(req.acl)
            commit_sets = dict(fresh)
            image = {
                "path": final_path, "data": req.data, "version": 0,
                "cversion": 0, "created_tx": 0, "children": [],
                "ephemeral_owner": req.session if req.ephemeral else None,
            }
            if req.acl:
                image["acl"] = dict(req.acl)
            parent_image = {
                "path": parent_path(final_path),
                "meta_only": True,
                "version": parent.get("version", 0),
                "cversion": parent_sets["cversion"],
                "created_tx": parent.get("created_tx", 0),
                "modified_tx": parent.get("modified_tx", 0),
                "children": children,
                "ephemeral_owner": parent.get("ephemeral_owner"),
            }
            session_ops = []
            if req.ephemeral:
                session_ops.append((
                    SYSTEM_SESSIONS, req.session,
                    [ListAppend("ephemeral", [final_path])],
                ))
            msg = {
                "session": req.session, "rid": req.rid, "op": "create",
                "path": final_path, "parent": parent_path(final_path),
                "node_image": image, "parent_image": parent_image,
                "commit_sets": commit_sets, "parent_sets": parent_sets,
                "prev_version": None,
                "parent_prev_cversion": parent.get("cversion", 0),
            }
            return final_path, msg, commit_sets, parent_sets, session_ops

        if req.op == "delete":
            assert parent is not None
            if not self._node_exists(node):
                return "no_node"
            if not acl_allows(node.get("acl"), "delete", req.session):
                return "access_denied"
            if req.version >= 0 and node.get("version", 0) != req.version:
                return "bad_version"
            if node.get("children"):
                return "not_empty"
            name = node_name(req.path)
            children = [c for c in parent.get("children", []) if c != name]
            parent_sets = {
                "children": children,
                "cversion": parent.get("cversion", 0) + 1,
            }
            commit_sets = {"exists": False, "data_len": 0}
            image = {"path": req.path, "deleted": True}
            parent_image = {
                "path": parent_path(req.path),
                "meta_only": True,
                "version": parent.get("version", 0),
                "cversion": parent_sets["cversion"],
                "created_tx": parent.get("created_tx", 0),
                "modified_tx": parent.get("modified_tx", 0),
                "children": children,
                "ephemeral_owner": parent.get("ephemeral_owner"),
            }
            session_ops = []
            owner = node.get("ephemeral_owner")
            if owner:
                session_ops.append((
                    SYSTEM_SESSIONS, owner,
                    [ListRemove("ephemeral", [req.path])],
                ))
            msg = {
                "session": req.session, "rid": req.rid, "op": "delete",
                "path": req.path, "parent": parent_path(req.path),
                "node_image": image, "parent_image": parent_image,
                "commit_sets": commit_sets, "parent_sets": parent_sets,
                "prev_version": node.get("version", 0),
                "parent_prev_cversion": parent.get("cversion", 0),
            }
            return req.path, msg, commit_sets, parent_sets, session_ops

        return "bad_arguments"  # pragma: no cover - defensive

    # ------------------------------------------------------------ sessions
    def _close_session(self, fctx, req: Request) -> Generator:
        """Session teardown: delete owned ephemerals, drop the session."""
        sessions = self.service.system_store
        item = yield from sessions.get_item(fctx.ctx, SYSTEM_SESSIONS, req.session)
        if item is not None:
            ephemerals = list(item.get("ephemeral", []))
        else:
            # Native-TTL evictions delete the record before the close
            # request runs; the evictor embedded the list in the message.
            ephemerals = list(req.ephemerals or [])
        # Deepest paths first so children go before parents.
        for path in sorted(ephemerals, key=lambda p: -p.count("/")):
            sub = Request(session=req.session, rid=-1, op="delete",
                          path=path, version=-1)
            yield from self._write_op(fctx, sub)
        yield from sessions.delete_item(fctx.ctx, SYSTEM_SESSIONS, req.session)
        # rid < 0 marks a teardown the client never asked for: the
        # heartbeat evictor's close-session request.
        self.service.on_session_closed(req.session, evicted=req.rid < 0)
        if req.rid >= 0:
            yield from self.service.notify_response(
                Response(session=req.session, rid=req.rid, ok=True))
        return None
