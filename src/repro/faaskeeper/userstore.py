"""User-data storage backends (Section 4.2, Figures 8/9/11).

The user store holds the read-optimized replica of every node.  Four
backends, matching the paper's evaluation:

* **S3Backend** — object store only.  Writes are whole-object: the leader
  first downloads the existing node, then uploads the full new image (the
  read-modify-write cost the paper attributes to missing partial updates,
  Requirement #6).
* **DynamoBackend** — key-value only: fast small reads, per-kB write costs
  that explode for large nodes.
* **HybridBackend** — nodes up to ``threshold_kb`` live entirely in the
  key-value store; for larger nodes the metadata stays in the key-value
  item and the data bytes go to the object store.  Reads start at the
  key-value item and only large nodes pay the second request.
* **RedisBackend** — user-managed in-memory cache: ZooKeeper-level latency,
  but a provisioned VM (not serverless).

All backends expose per-region replicas; the leader writes each region and
clients read their local one.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..cloud.cloud import Cloud
from ..cloud.context import OpContext
from ..cloud.errors import NoSuchObject
from ..cloud.expressions import item_size_kb
from .config import FaaSKeeperConfig, UserStoreKind
from .layout import USER_BUCKET, USER_TABLE

__all__ = ["UserStore", "make_user_store", "entry_size_kb",
           "CACHE_ENTRY_OVERHEAD_KB"]

#: Fixed per-entry bookkeeping overhead of a client-cache slot (key, watch
#: id, LRU links), charged against ``client_cache_kb`` on top of the image.
CACHE_ENTRY_OVERHEAD_KB = 0.0625


def entry_size_kb(image: Dict[str, Any]) -> float:
    """Memory footprint one cached node image charges against the client
    cache's byte budget: the billable image size (same accounting as the
    storage backends) plus the fixed per-entry overhead."""
    return CACHE_ENTRY_OVERHEAD_KB + item_size_kb(image)


class UserStore:
    """Abstract backend: region-replicated node images."""

    kind: str = "?"

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        self.cloud = cloud
        self.regions = list(regions)

    # API ------------------------------------------------------------------
    def write_node(self, ctx: OpContext, region: str, path: str,
                   image: Dict[str, Any]) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def read_node(self, ctx: OpContext, region: str, path: str
                  ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        raise NotImplementedError

    def delete_node(self, ctx: OpContext, region: str, path: str
                    ) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def update_metadata(self, ctx: OpContext, region: str, path: str,
                        meta_image: Dict[str, Any]) -> Generator[Any, Any, None]:
        """Read-update-write of a node's metadata, preserving its data.

        The leader uses this for parent nodes (child list / cversion
        changes): the node data itself did not change, but object storage
        has no partial updates (Requirement #6), so the whole node is
        downloaded and rewritten.
        """
        existing = yield from self.read_node(ctx, region, path)
        merged = dict(meta_image)
        merged["data"] = (existing or {}).get("data", b"")
        yield from self.write_node(ctx, region, path, merged)

    @staticmethod
    def image_size_kb(image: Dict[str, Any]) -> float:
        return item_size_kb(image)


class S3Backend(UserStore):
    """Object store backend: node image serialized as one object."""

    kind = UserStoreKind.S3

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        super().__init__(cloud, regions)
        for region in regions:
            store = cloud.objectstore("s3", region=region)
            store.create_bucket(USER_BUCKET)

    def write_node(self, ctx, region, path, image):
        store = self.cloud.objectstore("s3", region=region)
        # No partial updates (Requirement #6): even a metadata-only change
        # requires downloading the old node before uploading the new one.
        try:
            yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:
            pass
        meta = {k: v for k, v in image.items() if k != "data"}
        yield from store.put_object(ctx, USER_BUCKET, path, image.get("data", b""), meta)

    def read_node(self, ctx, region, path):
        store = self.cloud.objectstore("s3", region=region)
        try:
            payload, meta = yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:
            return None
        image = dict(meta)
        image["data"] = payload
        return image

    def delete_node(self, ctx, region, path):
        store = self.cloud.objectstore("s3", region=region)
        yield from store.delete_object(ctx, USER_BUCKET, path)

    def update_metadata(self, ctx, region, path, meta_image):
        # Single download + whole-object upload (Table 3's "Update Node").
        store = self.cloud.objectstore("s3", region=region)
        try:
            payload, _meta = yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:
            payload = b""
        meta = {k: v for k, v in meta_image.items() if k != "data"}
        yield from store.put_object(ctx, USER_BUCKET, path, payload, meta)


class DynamoBackend(UserStore):
    """Key-value backend: node image stored as one item."""

    kind = UserStoreKind.DYNAMODB

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        super().__init__(cloud, regions)
        for region in regions:
            kv = cloud.kv("dynamodb:user", region=region)
            kv.create_table(USER_TABLE)

    def write_node(self, ctx, region, path, image):
        kv = self.cloud.kv("dynamodb:user", region=region)
        yield from kv.put_item(ctx, USER_TABLE, path, image)

    def read_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        return (yield from kv.get_item(ctx, USER_TABLE, path, consistent=True))

    def delete_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        yield from kv.delete_item(ctx, USER_TABLE, path)


class HybridBackend(UserStore):
    """Small nodes in the key-value store, large data spilled to S3.

    Section 4.2: optimizes for the common case (ZooKeeper nodes are tiny —
    the HBase study in Section 5.1 found a median node size of 0 bytes)
    while keeping large-node costs bounded by object-storage prices.
    """

    kind = UserStoreKind.HYBRID

    def __init__(self, cloud: Cloud, regions: List[str],
                 threshold_kb: float = 4.0) -> None:
        super().__init__(cloud, regions)
        self.threshold_kb = threshold_kb
        for region in regions:
            cloud.kv("dynamodb:user", region=region).create_table(USER_TABLE)
            cloud.objectstore("s3", region=region).create_bucket(USER_BUCKET)

    def write_node(self, ctx, region, path, image):
        kv = self.cloud.kv("dynamodb:user", region=region)
        store = self.cloud.objectstore("s3", region=region)
        data = image.get("data", b"")
        if len(data) / 1024.0 <= self.threshold_kb:
            yield from kv.put_item(ctx, USER_TABLE, path, dict(image, data_in_s3=False))
            return
        meta = {k: v for k, v in image.items() if k != "data"}
        meta["data_in_s3"] = True
        # The two writes are not atomic; write data first so a reader that
        # sees the new metadata always finds the matching object version.
        yield from store.put_object(ctx, USER_BUCKET, path, data, {})
        yield from kv.put_item(ctx, USER_TABLE, path, meta)

    def read_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        item = yield from kv.get_item(ctx, USER_TABLE, path, consistent=True)
        if item is None:
            return None
        if not item.get("data_in_s3"):
            item.pop("data_in_s3", None)
            return item
        store = self.cloud.objectstore("s3", region=region)
        try:
            payload, _meta = yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:  # pragma: no cover - defensive
            payload = b""
        item.pop("data_in_s3", None)
        item["data"] = payload
        return item

    def delete_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        item = yield from kv.get_item(ctx, USER_TABLE, path, consistent=True)
        yield from kv.delete_item(ctx, USER_TABLE, path)
        if item is not None and item.get("data_in_s3"):
            store = self.cloud.objectstore("s3", region=region)
            yield from store.delete_object(ctx, USER_BUCKET, path)

    def update_metadata(self, ctx, region, path, meta_image):
        # Metadata lives in the key-value item; large data in S3 is left
        # untouched — the hybrid layout's cheap-parent-update advantage.
        kv = self.cloud.kv("dynamodb:user", region=region)
        item = yield from kv.get_item(ctx, USER_TABLE, path, consistent=True)
        meta = {k: v for k, v in meta_image.items() if k != "data"}
        if item is not None and item.get("data_in_s3"):
            meta["data_in_s3"] = True
            yield from kv.put_item(ctx, USER_TABLE, path, meta)
        else:
            meta["data"] = (item or {}).get("data", b"")
            meta["data_in_s3"] = False
            yield from kv.put_item(ctx, USER_TABLE, path, meta)


class RedisBackend(UserStore):
    """User-managed in-memory cache (Figure 8's Redis line)."""

    kind = UserStoreKind.REDIS

    def write_node(self, ctx, region, path, image):
        cache = self.cloud.cache("redis", region=region)
        yield from cache.set(ctx, path, image)

    def read_node(self, ctx, region, path):
        cache = self.cloud.cache("redis", region=region)
        return (yield from cache.get(ctx, path))

    def delete_node(self, ctx, region, path):
        cache = self.cloud.cache("redis", region=region)
        yield from cache.delete(ctx, path)


def make_user_store(cloud: Cloud, config: FaaSKeeperConfig) -> UserStore:
    kind = config.user_store
    if kind == UserStoreKind.S3:
        return S3Backend(cloud, config.regions)
    if kind == UserStoreKind.DYNAMODB:
        return DynamoBackend(cloud, config.regions)
    if kind == UserStoreKind.HYBRID:
        return HybridBackend(cloud, config.regions, config.hybrid_threshold_kb)
    if kind == UserStoreKind.REDIS:
        return RedisBackend(cloud, config.regions)
    raise ValueError(f"unknown user store kind {kind!r}")  # pragma: no cover
