"""User-data storage backends (Section 4.2, Figures 8/9/11).

The user store holds the read-optimized replica of every node.  Backends
are **registered by URI scheme** (:func:`register_backend`) and resolved
by :func:`make_user_store` from either a bare kind (``"s3"``, the
historical config spelling) or a URI with parameters
(``"hybrid://?threshold_kb=8"``).  The paper's four evaluated backends:

* **S3Backend** (``s3://``) — object store only.  Writes are whole-object:
  the leader first downloads the existing node, then uploads the full new
  image (the read-modify-write cost the paper attributes to missing
  partial updates, Requirement #6).
* **DynamoBackend** (``dynamo://`` / ``dynamodb://``) — key-value only:
  fast small reads, per-kB write costs that explode for large nodes.
* **HybridBackend** (``hybrid://``) — nodes up to ``threshold_kb`` live
  entirely in the key-value store; for larger nodes the metadata stays in
  the key-value item and the data bytes go to the object store.  Reads
  start at the key-value item and only large nodes pay the second request.
* **RedisBackend** (``redis://``) — user-managed in-memory cache:
  ZooKeeper-level latency, but a provisioned VM (not serverless).

plus a reference backend:

* **MemBackend** (``mem://``) — in-process per-region dicts with a fixed
  sub-millisecond latency and zero billing: the conformance suite's
  baseline and the cheapest substrate for chaos/fault matrices.

Every backend declares capabilities on its class (``supports_ttl`` — can
the fleet expire items natively, Dynamo-style?) and implements the shared
API plus three inspection hooks (:meth:`UserStore.peek`,
:meth:`UserStore.wipe_region`, :meth:`UserStore.fault_points`) that the
chaos harness and the fault injector use without switching on kind.

All backends expose per-region replicas; the leader writes each region and
clients read their local one.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Generator, List, Optional, Tuple, Type
from urllib.parse import parse_qsl, urlparse

from ..cloud.cloud import Cloud
from ..cloud.context import OpContext
from ..cloud.errors import NoSuchObject
from ..cloud.expressions import item_size_kb
from ..cloud.faults import FaultInjector, draw_fault
from .config import FaaSKeeperConfig, UserStoreKind
from .layout import USER_BUCKET, USER_TABLE

__all__ = ["UserStore", "make_user_store", "entry_size_kb",
           "CACHE_ENTRY_OVERHEAD_KB", "register_backend", "backend_for",
           "registered_schemes", "parse_store_uri", "is_registered_scheme",
           "load_entry_point_backends", "BACKEND_ENTRY_POINT_GROUP",
           "S3Backend", "DynamoBackend", "HybridBackend", "RedisBackend",
           "MemBackend"]

#: Fixed per-entry bookkeeping overhead of a client-cache slot (key, watch
#: id, LRU links), charged against ``client_cache_kb`` on top of the image.
CACHE_ENTRY_OVERHEAD_KB = 0.0625


def entry_size_kb(image: Dict[str, Any]) -> float:
    """Memory footprint one cached node image charges against the client
    cache's byte budget: the billable image size (same accounting as the
    storage backends) plus the fixed per-entry overhead."""
    return CACHE_ENTRY_OVERHEAD_KB + item_size_kb(image)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: scheme (including aliases) -> backend class.
BACKEND_REGISTRY: Dict[str, Type["UserStore"]] = {}


def register_backend(scheme: str, *aliases: str):
    """Class decorator: register a :class:`UserStore` under its URI scheme.

    The primary ``scheme`` becomes the class's canonical ``kind``;
    ``aliases`` resolve to the same class (``dynamo://`` next to the
    historical ``dynamodb`` kind string).  Registration is what makes a
    backend conformance-tested: the shared suite parameterizes over
    :func:`registered_schemes`.
    """

    def wrap(cls: Type["UserStore"]) -> Type["UserStore"]:
        cls.scheme = scheme
        for name in (scheme, *aliases):
            existing = BACKEND_REGISTRY.get(name)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"scheme {name!r} already registered to {existing.__name__}")
            BACKEND_REGISTRY[name] = cls
        return cls

    return wrap


def registered_schemes() -> List[str]:
    """Canonical schemes, sorted (aliases collapse onto their backend)."""
    return sorted({cls.scheme for cls in BACKEND_REGISTRY.values()})


def backend_for(scheme: str) -> Type["UserStore"]:
    cls = BACKEND_REGISTRY.get(scheme)
    if cls is None:
        # Miss: a third-party backend may be waiting behind an entry point.
        # Discovery is deliberately lazy — the built-in registry (and the
        # conformance suite parameterized over it) is never perturbed at
        # import time by whatever happens to be installed.
        load_entry_point_backends()
        cls = BACKEND_REGISTRY.get(scheme)
    if cls is None:
        raise ValueError(
            f"unknown user store scheme {scheme!r} "
            f"(registered: {registered_schemes()})")
    return cls


def is_registered_scheme(scheme: str) -> bool:
    """True if ``scheme`` resolves to a backend, consulting the
    ``faaskeeper.backends`` entry-point group on a registry miss."""
    if scheme in BACKEND_REGISTRY:
        return True
    load_entry_point_backends()
    return scheme in BACKEND_REGISTRY


# --- entry-point discovery (third-party backends) --------------------------

#: Installed distributions advertise extra backends under this group:
#: ``[project.entry-points."faaskeeper.backends"] myscheme = "pkg.mod:Cls"``.
BACKEND_ENTRY_POINT_GROUP = "faaskeeper.backends"

#: One-shot latch: discovery runs at most once per process (reset by the
#: test fixture that fakes entry points).
_ENTRY_POINTS_LOADED = False


def _iter_backend_entry_points() -> List[Any]:
    """Entry points in :data:`BACKEND_ENTRY_POINT_GROUP`.

    Isolated as a seam so tests can monkeypatch a fake entry point in
    without installing a distribution.  Tolerates both the selectable
    (3.10+) and the mapping (legacy) ``entry_points()`` APIs.
    """
    import importlib.metadata as importlib_metadata
    try:
        eps = importlib_metadata.entry_points()
    except Exception:  # pragma: no cover - metadata backend misbehaving
        return []
    if hasattr(eps, "select"):
        return list(eps.select(group=BACKEND_ENTRY_POINT_GROUP))
    return list(eps.get(BACKEND_ENTRY_POINT_GROUP, []))  # pragma: no cover


def load_entry_point_backends(force: bool = False) -> List[str]:
    """Load and register third-party backends from entry points.

    Each entry point's name is the URI scheme it registers under; the
    target must resolve to a :class:`UserStore` subclass.  A class that
    already self-registered during its module import (via the
    :func:`register_backend` decorator) is left alone.  Returns the
    schemes newly registered by this call.
    """
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED and not force:
        return []
    _ENTRY_POINTS_LOADED = True
    loaded: List[str] = []
    for ep in _iter_backend_entry_points():
        if ep.name in BACKEND_REGISTRY:
            continue
        cls = ep.load()
        if not (isinstance(cls, type) and issubclass(cls, UserStore)):
            raise TypeError(
                f"entry point {ep.name!r} in {BACKEND_ENTRY_POINT_GROUP!r} "
                f"must resolve to a UserStore subclass, got {cls!r}")
        if ep.name not in BACKEND_REGISTRY:  # load() may self-register
            register_backend(ep.name)(cls)
        loaded.append(ep.name)
    return loaded


def parse_store_uri(uri: str) -> Tuple[str, Dict[str, str]]:
    """Split a store spec into (scheme, params).

    Accepts both the historical bare kinds (``"s3"``) and URIs with a
    query string (``"hybrid://?threshold_kb=8"``).  Host/path parts are
    rejected — a backend's replicas are addressed by the deployment's
    region list, not by the URI.
    """
    if "://" not in uri:
        return uri, {}
    parsed = urlparse(uri)
    if parsed.netloc or (parsed.path and parsed.path != "/"):
        raise ValueError(
            f"user store URI {uri!r} must not carry host/path parts")
    return parsed.scheme, dict(parse_qsl(parsed.query))


def make_user_store(cloud: Cloud, config: FaaSKeeperConfig) -> "UserStore":
    """Resolve ``config.user_store`` through the registry."""
    scheme, params = parse_store_uri(config.user_store)
    cls = backend_for(scheme)
    return cls.from_config(cloud, config, params)


# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------

class UserStore:
    """Abstract backend: region-replicated node images."""

    kind: str = "?"
    #: Canonical URI scheme (set by :func:`register_backend`).
    scheme: str = "?"
    #: Capability: the backend's stores expire items natively (conditional
    #: Dynamo-style TTL) — the gate for TTL-native ephemeral cleanup.
    supports_ttl: bool = False

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        self.cloud = cloud
        self.regions = list(regions)

    @classmethod
    def from_config(cls, cloud: Cloud, config: FaaSKeeperConfig,
                    params: Dict[str, str]) -> "UserStore":
        """Construct from a deployment config + URI query parameters."""
        if params:
            raise ValueError(
                f"{cls.scheme}:// takes no parameters, got {sorted(params)}")
        return cls(cloud, config.regions)

    # API ------------------------------------------------------------------
    def write_node(self, ctx: OpContext, region: str, path: str,
                   image: Dict[str, Any]) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def read_node(self, ctx: OpContext, region: str, path: str
                  ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        raise NotImplementedError

    def delete_node(self, ctx: OpContext, region: str, path: str
                    ) -> Generator[Any, Any, None]:
        raise NotImplementedError

    def update_metadata(self, ctx: OpContext, region: str, path: str,
                        meta_image: Dict[str, Any]) -> Generator[Any, Any, None]:
        """Read-update-write of a node's metadata, preserving its data.

        The leader uses this for parent nodes (child list / cversion
        changes): the node data itself did not change, but object storage
        has no partial updates (Requirement #6), so the whole node is
        downloaded and rewritten.
        """
        existing = yield from self.read_node(ctx, region, path)
        merged = dict(meta_image)
        merged["data"] = (existing or {}).get("data", b"")
        yield from self.write_node(ctx, region, path, merged)

    # Inspection hooks (zero latency — chaos harness and tests) ------------
    def peek(self, region: str, path: str) -> Optional[Dict[str, Any]]:
        """Zero-latency image peek (the billed path is :meth:`read_node`)."""
        raise NotImplementedError

    def wipe_region(self, region: str) -> None:
        """Destroy one region's replica in place (the disaster
        :meth:`SnapshotManager.recover_region` exists for)."""
        raise NotImplementedError

    def fault_points(self) -> List[Any]:
        """Underlying store objects a fault injector arms (each carries a
        ``faults`` attribute, a ``service_label`` and a ``region``)."""
        return []

    @staticmethod
    def image_size_kb(image: Dict[str, Any]) -> float:
        return item_size_kb(image)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

@register_backend("s3")
class S3Backend(UserStore):
    """Object store backend: node image serialized as one object."""

    kind = UserStoreKind.S3

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        super().__init__(cloud, regions)
        for region in regions:
            store = cloud.objectstore("s3", region=region)
            store.create_bucket(USER_BUCKET)

    def write_node(self, ctx, region, path, image):
        store = self.cloud.objectstore("s3", region=region)
        # No partial updates (Requirement #6): even a metadata-only change
        # requires downloading the old node before uploading the new one.
        try:
            yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:
            pass
        meta = {k: v for k, v in image.items() if k != "data"}
        yield from store.put_object(ctx, USER_BUCKET, path, image.get("data", b""), meta)

    def read_node(self, ctx, region, path):
        store = self.cloud.objectstore("s3", region=region)
        try:
            payload, meta = yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:
            return None
        image = dict(meta)
        image["data"] = payload
        return image

    def delete_node(self, ctx, region, path):
        store = self.cloud.objectstore("s3", region=region)
        yield from store.delete_object(ctx, USER_BUCKET, path)

    def update_metadata(self, ctx, region, path, meta_image):
        # Single download + whole-object upload (Table 3's "Update Node").
        store = self.cloud.objectstore("s3", region=region)
        try:
            payload, _meta = yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:
            payload = b""
        meta = {k: v for k, v in meta_image.items() if k != "data"}
        yield from store.put_object(ctx, USER_BUCKET, path, payload, meta)

    def peek(self, region, path):
        bucket = self.cloud.objectstore("s3", region=region)._buckets[USER_BUCKET]
        entry = bucket.get(path)
        if entry is None:
            return None
        payload, meta = entry
        return dict(meta, data=payload)

    def wipe_region(self, region):
        self.cloud.objectstore("s3", region=region)._buckets[USER_BUCKET].clear()

    def fault_points(self):
        return [self.cloud.objectstore("s3", region=r) for r in self.regions]


@register_backend("dynamodb", "dynamo")
class DynamoBackend(UserStore):
    """Key-value backend: node image stored as one item."""

    kind = UserStoreKind.DYNAMODB
    supports_ttl = True

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        super().__init__(cloud, regions)
        for region in regions:
            kv = cloud.kv("dynamodb:user", region=region)
            kv.create_table(USER_TABLE)

    def write_node(self, ctx, region, path, image):
        kv = self.cloud.kv("dynamodb:user", region=region)
        yield from kv.put_item(ctx, USER_TABLE, path, image)

    def read_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        return (yield from kv.get_item(ctx, USER_TABLE, path, consistent=True))

    def delete_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        yield from kv.delete_item(ctx, USER_TABLE, path)

    def peek(self, region, path):
        item = self.cloud.kv("dynamodb:user", region=region).table(USER_TABLE).raw(path)
        return None if item is None else dict(item)

    def wipe_region(self, region):
        self.cloud.kv("dynamodb:user", region=region).table(USER_TABLE)._items.clear()

    def fault_points(self):
        return [self.cloud.kv("dynamodb:user", region=r) for r in self.regions]


@register_backend("hybrid")
class HybridBackend(UserStore):
    """Small nodes in the key-value store, large data spilled to S3.

    Section 4.2: optimizes for the common case (ZooKeeper nodes are tiny —
    the HBase study in Section 5.1 found a median node size of 0 bytes)
    while keeping large-node costs bounded by object-storage prices.
    """

    kind = UserStoreKind.HYBRID
    supports_ttl = True

    def __init__(self, cloud: Cloud, regions: List[str],
                 threshold_kb: float = 4.0) -> None:
        super().__init__(cloud, regions)
        self.threshold_kb = threshold_kb
        for region in regions:
            cloud.kv("dynamodb:user", region=region).create_table(USER_TABLE)
            cloud.objectstore("s3", region=region).create_bucket(USER_BUCKET)

    @classmethod
    def from_config(cls, cloud, config, params):
        extra = set(params) - {"threshold_kb"}
        if extra:
            raise ValueError(f"hybrid:// unknown parameters {sorted(extra)}")
        threshold = float(params.get("threshold_kb", config.hybrid_threshold_kb))
        return cls(cloud, config.regions, threshold_kb=threshold)

    def write_node(self, ctx, region, path, image):
        kv = self.cloud.kv("dynamodb:user", region=region)
        store = self.cloud.objectstore("s3", region=region)
        data = image.get("data", b"")
        if len(data) / 1024.0 <= self.threshold_kb:
            yield from kv.put_item(ctx, USER_TABLE, path, dict(image, data_in_s3=False))
            return
        meta = {k: v for k, v in image.items() if k != "data"}
        meta["data_in_s3"] = True
        # The two writes are not atomic; write data first so a reader that
        # sees the new metadata always finds the matching object version.
        yield from store.put_object(ctx, USER_BUCKET, path, data, {})
        yield from kv.put_item(ctx, USER_TABLE, path, meta)

    def read_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        item = yield from kv.get_item(ctx, USER_TABLE, path, consistent=True)
        if item is None:
            return None
        if not item.get("data_in_s3"):
            item.pop("data_in_s3", None)
            return item
        store = self.cloud.objectstore("s3", region=region)
        try:
            payload, _meta = yield from store.get_object(ctx, USER_BUCKET, path)
        except NoSuchObject:  # pragma: no cover - defensive
            payload = b""
        item.pop("data_in_s3", None)
        item["data"] = payload
        return item

    def delete_node(self, ctx, region, path):
        kv = self.cloud.kv("dynamodb:user", region=region)
        item = yield from kv.get_item(ctx, USER_TABLE, path, consistent=True)
        yield from kv.delete_item(ctx, USER_TABLE, path)
        if item is not None and item.get("data_in_s3"):
            store = self.cloud.objectstore("s3", region=region)
            yield from store.delete_object(ctx, USER_BUCKET, path)

    def update_metadata(self, ctx, region, path, meta_image):
        # Metadata lives in the key-value item; large data in S3 is left
        # untouched — the hybrid layout's cheap-parent-update advantage.
        kv = self.cloud.kv("dynamodb:user", region=region)
        item = yield from kv.get_item(ctx, USER_TABLE, path, consistent=True)
        meta = {k: v for k, v in meta_image.items() if k != "data"}
        if item is not None and item.get("data_in_s3"):
            meta["data_in_s3"] = True
            yield from kv.put_item(ctx, USER_TABLE, path, meta)
        else:
            meta["data"] = (item or {}).get("data", b"")
            meta["data_in_s3"] = False
            yield from kv.put_item(ctx, USER_TABLE, path, meta)

    def peek(self, region, path):
        item = self.cloud.kv("dynamodb:user", region=region).table(USER_TABLE).raw(path)
        if item is None:
            return None
        item = dict(item)
        if item.get("data_in_s3"):
            payload = self.cloud.objectstore("s3", region=region).raw(USER_BUCKET, path)
            item["data"] = payload or b""
        item.pop("data_in_s3", None)
        return item

    def wipe_region(self, region):
        self.cloud.kv("dynamodb:user", region=region).table(USER_TABLE)._items.clear()
        self.cloud.objectstore("s3", region=region)._buckets[USER_BUCKET].clear()

    def fault_points(self):
        points = []
        for r in self.regions:
            points.append(self.cloud.kv("dynamodb:user", region=r))
            points.append(self.cloud.objectstore("s3", region=r))
        return points


@register_backend("redis")
class RedisBackend(UserStore):
    """User-managed in-memory cache (Figure 8's Redis line)."""

    kind = UserStoreKind.REDIS

    def write_node(self, ctx, region, path, image):
        cache = self.cloud.cache("redis", region=region)
        yield from cache.set(ctx, path, image)

    def read_node(self, ctx, region, path):
        cache = self.cloud.cache("redis", region=region)
        return (yield from cache.get(ctx, path))

    def delete_node(self, ctx, region, path):
        cache = self.cloud.cache("redis", region=region)
        yield from cache.delete(ctx, path)

    def peek(self, region, path):
        return self.cloud.cache("redis", region=region)._data.get(path)

    def wipe_region(self, region):
        self.cloud.cache("redis", region=region)._data.clear()

    def fault_points(self):
        return [self.cloud.cache("redis", region=r) for r in self.regions]


@register_backend("mem")
class MemBackend(UserStore):
    """In-process reference backend: per-region dicts, fixed latency,
    zero billing.  The conformance suite's baseline — any behavioural
    divergence in a cloud backend shows up as a diff against ``mem://`` —
    and the cheapest substrate for chaos and fault-schedule matrices."""

    kind = UserStoreKind.MEM
    supports_ttl = True
    #: Fixed per-op latency (ms): deterministic, no RNG draws.
    LATENCY_MS = 0.1
    # Labels for fault-injector arming (MemBackend is its own fault point).
    service_label = "mem"
    region = "all"

    def __init__(self, cloud: Cloud, regions: List[str]) -> None:
        super().__init__(cloud, regions)
        self._data: Dict[str, Dict[str, Dict[str, Any]]] = {
            r: {} for r in regions}
        self.faults: Optional[FaultInjector] = None

    def _replica(self, region: str) -> Dict[str, Dict[str, Any]]:
        try:
            return self._data[region]
        except KeyError:
            raise ValueError(f"unknown region {region!r}") from None

    def write_node(self, ctx, region, path, image):
        replica = self._replica(region)
        fault = draw_fault(self.faults, "write_node", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"mem write {path}")
        yield self.cloud.env.timeout(self.LATENCY_MS)
        replica[path] = copy.deepcopy(image)
        if fault is not None:
            self.faults.fire_after(fault, f"mem write {path}")

    def read_node(self, ctx, region, path):
        replica = self._replica(region)
        fault = draw_fault(self.faults, "read_node", mutating=False)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"mem read {path}")
        yield self.cloud.env.timeout(self.LATENCY_MS)
        return copy.deepcopy(replica.get(path))

    def delete_node(self, ctx, region, path):
        replica = self._replica(region)
        fault = draw_fault(self.faults, "delete_node", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"mem delete {path}")
        yield self.cloud.env.timeout(self.LATENCY_MS)
        replica.pop(path, None)
        if fault is not None:
            self.faults.fire_after(fault, f"mem delete {path}")

    def peek(self, region, path):
        return self._replica(region).get(path)

    def wipe_region(self, region):
        self._replica(region).clear()

    def fault_points(self):
        return [self]
