"""Watch registry over the system watch table (Section 3.4).

Each node path has at most one *watch instance* per watch type; hundreds of
clients may join the same instance (the paper: "multiple clients can be
assigned to a single watch instance").  An instance has a unique identifier
— the value the epoch counter tracks while its notification is in flight.

Registration is a single conditional-free update: ``SetIfNotExists`` on the
instance id plus ``ListAppend`` on the session list, so concurrent
registrations race safely (first writer names the instance; everyone reads
the winning id from the returned image).

Consumption (watches are one-shot, as in ZooKeeper) removes the instance
atomically; the leader then hands the (id, sessions) pairs to the watch
function for fan-out.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cloud.context import OpContext
from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, ListAppend, Remove, SetIfNotExists
from ..cloud.kvstore import KeyValueStore
from ..primitives.atomics import AtomicList
from .layout import SYSTEM_WATCHES, epoch_key
from .model import EventType, WatchType

__all__ = ["WatchRegistry", "TriggeredWatch", "triggered_watch_types",
           "EpochLedger"]

_uid = itertools.count(1)


class TriggeredWatch:
    """A consumed watch instance, ready for fan-out."""

    __slots__ = ("watch_id", "path", "wtype", "event", "sessions")

    def __init__(self, watch_id: str, path: str, wtype: WatchType,
                 event: EventType, sessions: List[str]) -> None:
        self.watch_id = watch_id
        self.path = path
        self.wtype = wtype
        self.event = event
        self.sessions = sessions


def triggered_watch_types(op: str, is_parent: bool) -> List[Tuple[WatchType, EventType]]:
    """Which watch types fire for an operation on a node / its parent."""
    if is_parent:
        # Changes to a child fire the parent's children watch.
        if op in ("create", "delete"):
            return [(WatchType.CHILDREN, EventType.NODE_CHILDREN_CHANGED)]
        return []
    if op == "create":
        return [(WatchType.EXISTS, EventType.NODE_CREATED)]
    if op == "set_data":
        return [
            (WatchType.DATA, EventType.NODE_DATA_CHANGED),
            (WatchType.EXISTS, EventType.NODE_DATA_CHANGED),
        ]
    if op == "delete":
        return [
            (WatchType.DATA, EventType.NODE_DELETED),
            (WatchType.EXISTS, EventType.NODE_DELETED),
            (WatchType.CHILDREN, EventType.NODE_DELETED),
        ]
    return []


class EpochLedger:
    """Region epoch counters shared by every leader shard (Section 3.4).

    The single-leader design lets the one warm leader sandbox cache the
    epoch lists in memory (the ``state`` argument of Algorithm 2).  A
    sharded pipeline has several leaders mutating the same counters, so
    the cache moves out of the leader into this ledger: the authoritative
    copy still lives in system storage (every add/remove is one atomic
    list write), while the mirror holds the list returned by the latest
    storage operation and is shared by all shards — the simulation's
    stand-in for the refresh a real deployment gets from the update's
    returned item image.

    Each leader still performs its own cold-start hydration reads
    (:meth:`load`), so the storage traffic of the shards=1 configuration
    is identical to the original private-cache implementation.
    """

    def __init__(self, store: KeyValueStore, table: str,
                 regions: List[str]) -> None:
        self.regions = list(regions)
        self.lists: Dict[str, AtomicList] = {
            region: AtomicList(store, table, epoch_key(region), attr="items")
            for region in self.regions
        }
        self._mirror: Dict[str, List[str]] = {}

    def load(self, ctx: OpContext) -> Generator:
        """Cold-start hydration: read every region's counter from storage."""
        for region in self.regions:
            lst = yield from self.lists[region].get(ctx)
            # A concurrent leader may have mirrored a newer value while this
            # read was in flight; the mirror is write-through, so keep it.
            self._mirror.setdefault(region, list(lst))
        return None

    def snapshot(self, region: str) -> List[str]:
        return list(self._mirror[region])

    def add(self, ctx: OpContext, watch_ids: List[str]) -> Generator:
        for region in self.regions:
            new = yield from self.lists[region].append(ctx, watch_ids)
            self._mirror[region] = list(new)
        return None

    def remove(self, ctx: OpContext, watch_ids: List[str]) -> Generator:
        for region in self.regions:
            new = yield from self.lists[region].remove(ctx, watch_ids)
            self._mirror[region] = list(new)
        return None

    def remove_after(self, invocation_done, watch_ids: List[str],
                     ctx: OpContext) -> Generator:
        """WatchCallback (Algorithm 2, step ➏): wait for the watch fan-out
        to finish, then clear its entries from every region's counter."""
        try:
            yield invocation_done
        except Exception:
            pass  # fan-out retried internally; clear regardless of outcome
        yield from self.remove(ctx, watch_ids)
        return None


class WatchRegistry:
    """Client-side registration and leader-side consumption of watches."""

    def __init__(self, store: KeyValueStore) -> None:
        self.store = store

    def register(self, ctx: OpContext, path: str, wtype: WatchType,
                 session: str) -> Generator[Any, Any, str]:
        """Join (creating if needed) the watch instance; returns its id."""
        candidate = f"w{next(_uid)}|{path}|{wtype.value}"
        image = yield from self.store.update_item(
            ctx, SYSTEM_WATCHES, path,
            updates=[
                SetIfNotExists(f"inst.{wtype.value}.id", candidate),
                ListAppend(f"inst.{wtype.value}.sessions", [session]),
            ],
            payload_kb=0.064,
        )
        return image["inst"][wtype.value]["id"]

    def query(self, ctx: OpContext, path: str
              ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Leader step ➍ prelude: the per-write watch lookup."""
        return (yield from self.store.get_item(ctx, SYSTEM_WATCHES, path))

    def remove_instance(self, ctx: OpContext, path: str, wtype: str,
                        observed_id: str,
                        observed_sessions: List[str]) -> Generator[Any, Any, bool]:
        """Guarded removal of one watch instance (the GC sweeper's path).

        The ``Remove`` only applies while the instance still matches the
        scan snapshot — same id AND same session list.  The id pin covers a
        watch consumed and re-registered in the scan-to-update window (the
        fresh instance survives); the session pin covers a live session
        *joining* the existing instance in that window (registration keeps
        the id, so the id alone would still sweep the newcomer away).
        Returns True when the instance was removed.
        """
        guard = (Attr(f"inst.{wtype}.id") == observed_id) & \
            (Attr(f"inst.{wtype}.sessions") == list(observed_sessions))
        try:
            yield from self.store.update_item(
                ctx, SYSTEM_WATCHES, path,
                updates=[Remove(f"inst.{wtype}")],
                condition=guard,
                payload_kb=0.064,
            )
        except ConditionFailed:
            return False
        return True

    def consume(self, ctx: OpContext, path: str, op: str, is_parent: bool,
                watch_item: Optional[Dict[str, Any]],
                ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Atomically remove the instances triggered by ``op`` on ``path``.

        ``watch_item`` is the result of a prior :meth:`query`; when it shows
        no matching instances the consume is free (no storage write).
        """
        return (yield from self._consume_types(
            ctx, path, triggered_watch_types(op, is_parent), watch_item))

    def consume_ops(self, ctx: OpContext, path: str,
                    op_pairs: List[Tuple[str, bool]],
                    watch_item: Optional[Dict[str, Any]],
                    ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Multi-op consume: the union of watch types triggered on ``path``
        by a committed transaction's sub-operations.  Each instance is
        removed — and therefore fires — exactly once per multi, no matter
        how many members touch the path; the first triggering member (in
        op order) names the delivered event type.
        """
        type_events: List[Tuple[WatchType, EventType]] = []
        seen = set()
        for op, is_parent in op_pairs:
            for wtype, event in triggered_watch_types(op, is_parent):
                if wtype not in seen:
                    seen.add(wtype)
                    type_events.append((wtype, event))
        return (yield from self._consume_types(ctx, path, type_events,
                                               watch_item))

    def query_consume(self, ctx: OpContext, path: str, op: str,
                      is_parent: bool) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Fused query + consume for one path (the leader's parallel step ➍
        and the distributor's watch stage run one of these per path)."""
        witem = yield from self.query(ctx, path)
        return (yield from self.consume(ctx, path, op, is_parent, witem))

    def query_consume_ops(self, ctx: OpContext, path: str,
                          op_pairs: List[Tuple[str, bool]],
                          ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Fused query + multi-op consume for one path."""
        witem = yield from self.query(ctx, path)
        return (yield from self.consume_ops(ctx, path, op_pairs, witem))

    def _consume_types(self, ctx: OpContext, path: str,
                       type_events: List[Tuple[WatchType, EventType]],
                       watch_item: Optional[Dict[str, Any]],
                       ) -> Generator[Any, Any, List[TriggeredWatch]]:
        if not watch_item:
            return []
        instances = watch_item.get("inst", {})
        triggered: List[TriggeredWatch] = []
        removals = []
        for wtype, event in type_events:
            inst = instances.get(wtype.value)
            if not inst or not inst.get("sessions"):
                continue
            triggered.append(TriggeredWatch(
                watch_id=inst["id"], path=path, wtype=wtype,
                event=event, sessions=list(inst["sessions"]),
            ))
            removals.append(Remove(f"inst.{wtype.value}"))
        if not removals:
            return []
        yield from self.store.update_item(
            ctx, SYSTEM_WATCHES, path, updates=removals, payload_kb=0.064,
        )
        return triggered
