"""Watch registry over the system watch table (Section 3.4), plus the
client-side self-re-arming watch decorators of the high-level API.

Each node path has at most one *watch instance* per watch type; hundreds of
clients may join the same instance (the paper: "multiple clients can be
assigned to a single watch instance").  An instance has a unique identifier
— the value the epoch counter tracks while its notification is in flight.

Registration is a single conditional-free update: ``SetIfNotExists`` on the
instance id plus ``ListAppend`` on the session list, so concurrent
registrations race safely (first writer names the instance; everyone reads
the winning id from the returned image).

Consumption (watches are one-shot, as in ZooKeeper) removes the instance
atomically; the leader then hands the (id, sessions) pairs to the watch
function for fan-out.

:class:`DataWatch` and :class:`ChildrenWatch` sit on top of the one-shot
protocol: they re-register on every delivery *before* re-reading, so a
change landing in the delivery→re-arm window either reaches the fresh read
(registration precedes the fetch inside ``get_data``/``exists``/
``get_children``) or fires the newly armed instance — the same
register-before-read protocol the client read cache relies on.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..cloud.context import OpContext
from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, ListAppend, Remove, SetIfNotExists
from ..cloud.kvstore import KeyValueStore
from ..primitives.atomics import AtomicList
from .exceptions import BadArgumentsError, NoNodeError, SessionClosedError
from .layout import epoch_key, watch_shard_of, watch_shard_table
from .model import EventType, WatchType, validate_path

__all__ = ["WatchRegistry", "TriggeredWatch", "triggered_watch_types",
           "EpochLedger", "DataWatch", "ChildrenWatch"]

_uid = itertools.count(1)


class TriggeredWatch:
    """A consumed watch instance, ready for fan-out."""

    __slots__ = ("watch_id", "path", "wtype", "event", "sessions")

    def __init__(self, watch_id: str, path: str, wtype: WatchType,
                 event: EventType, sessions: List[str]) -> None:
        self.watch_id = watch_id
        self.path = path
        self.wtype = wtype
        self.event = event
        self.sessions = sessions


def triggered_watch_types(op: str, is_parent: bool) -> List[Tuple[WatchType, EventType]]:
    """Which watch types fire for an operation on a node / its parent."""
    if is_parent:
        # Changes to a child fire the parent's children watch.
        if op in ("create", "delete"):
            return [(WatchType.CHILDREN, EventType.NODE_CHILDREN_CHANGED)]
        return []
    if op == "create":
        return [(WatchType.EXISTS, EventType.NODE_CREATED)]
    if op == "set_data":
        return [
            (WatchType.DATA, EventType.NODE_DATA_CHANGED),
            (WatchType.EXISTS, EventType.NODE_DATA_CHANGED),
        ]
    if op == "delete":
        return [
            (WatchType.DATA, EventType.NODE_DELETED),
            (WatchType.EXISTS, EventType.NODE_DELETED),
            (WatchType.CHILDREN, EventType.NODE_DELETED),
        ]
    return []


class EpochLedger:
    """Region epoch counters shared by every leader shard (Section 3.4).

    The single-leader design lets the one warm leader sandbox cache the
    epoch lists in memory (the ``state`` argument of Algorithm 2).  A
    sharded pipeline has several leaders mutating the same counters, so
    the cache moves out of the leader into this ledger: the authoritative
    copy still lives in system storage (every add/remove is one atomic
    list write), while the mirror holds the list returned by the latest
    storage operation and is shared by all shards — the simulation's
    stand-in for the refresh a real deployment gets from the update's
    returned item image.

    Each leader still performs its own cold-start hydration reads
    (:meth:`load`), so the storage traffic of the shards=1 configuration
    is identical to the original private-cache implementation.
    """

    def __init__(self, store: KeyValueStore, table: str,
                 regions: List[str]) -> None:
        self.regions = list(regions)
        self.lists: Dict[str, AtomicList] = {
            region: AtomicList(store, table, epoch_key(region), attr="items")
            for region in self.regions
        }
        self._mirror: Dict[str, List[str]] = {}

    def load(self, ctx: OpContext) -> Generator:
        """Cold-start hydration: read every region's counter from storage."""
        for region in self.regions:
            lst = yield from self.lists[region].get(ctx)
            # A concurrent leader may have mirrored a newer value while this
            # read was in flight; the mirror is write-through, so keep it.
            self._mirror.setdefault(region, list(lst))
        return None

    def snapshot(self, region: str) -> List[str]:
        return list(self._mirror[region])

    def add(self, ctx: OpContext, watch_ids: List[str]) -> Generator:
        for region in self.regions:
            new = yield from self.lists[region].append(ctx, watch_ids)
            self._mirror[region] = list(new)
        return None

    def remove(self, ctx: OpContext, watch_ids: List[str]) -> Generator:
        for region in self.regions:
            new = yield from self.lists[region].remove(ctx, watch_ids)
            self._mirror[region] = list(new)
        return None

    def remove_after(self, invocation_done, watch_ids: List[str],
                     ctx: OpContext) -> Generator:
        """WatchCallback (Algorithm 2, step ➏): wait for the watch fan-out
        to finish, then clear its entries from every region's counter."""
        try:
            yield invocation_done
        except Exception:
            pass  # fan-out retried internally; clear regardless of outcome
        yield from self.remove(ctx, watch_ids)
        return None


class WatchRegistry:
    """Client-side registration and leader-side consumption of watches.

    ``shards`` partitions the registry across path-hashed watch tables
    (``session_plane_shards``): every operation routes through
    :meth:`table_for`, so the guarded-removal protocol — instance-id plus
    session-list pin — carries across the partition boundary unchanged;
    only the table name varies.  Shard 0 keeps the flat-plane table name,
    so one shard is bit-for-bit today's registry.
    """

    def __init__(self, store: KeyValueStore, shards: int = 1) -> None:
        self.store = store
        self.shards = shards
        #: Table names, indexed by watch shard (shard 0 first).
        self.tables: List[str] = [watch_shard_table(i) for i in range(shards)]

    def table_for(self, path: str) -> str:
        """Watch table owning ``path``'s instances."""
        return self.tables[watch_shard_of(path, self.shards)]

    def register(self, ctx: OpContext, path: str, wtype: WatchType,
                 session: str) -> Generator[Any, Any, str]:
        """Join (creating if needed) the watch instance; returns its id."""
        candidate = f"w{next(_uid)}|{path}|{wtype.value}"
        image = yield from self.store.update_item(
            ctx, self.table_for(path), path,
            updates=[
                SetIfNotExists(f"inst.{wtype.value}.id", candidate),
                ListAppend(f"inst.{wtype.value}.sessions", [session]),
            ],
            payload_kb=0.064,
        )
        return image["inst"][wtype.value]["id"]

    def query(self, ctx: OpContext, path: str
              ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Leader step ➍ prelude: the per-write watch lookup."""
        return (yield from self.store.get_item(
            ctx, self.table_for(path), path))

    def remove_instance(self, ctx: OpContext, path: str, wtype: str,
                        observed_id: str,
                        observed_sessions: List[str]) -> Generator[Any, Any, bool]:
        """Guarded removal of one watch instance (the GC sweeper's path).

        The ``Remove`` only applies while the instance still matches the
        scan snapshot — same id AND same session list.  The id pin covers a
        watch consumed and re-registered in the scan-to-update window (the
        fresh instance survives); the session pin covers a live session
        *joining* the existing instance in that window (registration keeps
        the id, so the id alone would still sweep the newcomer away).
        Returns True when the instance was removed.
        """
        guard = (Attr(f"inst.{wtype}.id") == observed_id) & \
            (Attr(f"inst.{wtype}.sessions") == list(observed_sessions))
        try:
            yield from self.store.update_item(
                ctx, self.table_for(path), path,
                updates=[Remove(f"inst.{wtype}")],
                condition=guard,
                payload_kb=0.064,
            )
        except ConditionFailed:
            return False
        return True

    def consume(self, ctx: OpContext, path: str, op: str, is_parent: bool,
                watch_item: Optional[Dict[str, Any]],
                ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Atomically remove the instances triggered by ``op`` on ``path``.

        ``watch_item`` is the result of a prior :meth:`query`; when it shows
        no matching instances the consume is free (no storage write).
        """
        return (yield from self._consume_types(
            ctx, path, triggered_watch_types(op, is_parent), watch_item))

    def consume_ops(self, ctx: OpContext, path: str,
                    op_pairs: List[Tuple[str, bool]],
                    watch_item: Optional[Dict[str, Any]],
                    ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Multi-op consume: the union of watch types triggered on ``path``
        by a committed transaction's sub-operations.  Each instance is
        removed — and therefore fires — exactly once per multi, no matter
        how many members touch the path; the first triggering member (in
        op order) names the delivered event type.
        """
        type_events: List[Tuple[WatchType, EventType]] = []
        seen = set()
        for op, is_parent in op_pairs:
            for wtype, event in triggered_watch_types(op, is_parent):
                if wtype not in seen:
                    seen.add(wtype)
                    type_events.append((wtype, event))
        return (yield from self._consume_types(ctx, path, type_events,
                                               watch_item))

    def query_consume(self, ctx: OpContext, path: str, op: str,
                      is_parent: bool) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Fused query + consume for one path (the leader's parallel step ➍
        and the distributor's watch stage run one of these per path)."""
        witem = yield from self.query(ctx, path)
        return (yield from self.consume(ctx, path, op, is_parent, witem))

    def query_consume_ops(self, ctx: OpContext, path: str,
                          op_pairs: List[Tuple[str, bool]],
                          ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Fused query + multi-op consume for one path."""
        witem = yield from self.query(ctx, path)
        return (yield from self.consume_ops(ctx, path, op_pairs, witem))

    def _consume_types(self, ctx: OpContext, path: str,
                       type_events: List[Tuple[WatchType, EventType]],
                       watch_item: Optional[Dict[str, Any]],
                       ) -> Generator[Any, Any, List[TriggeredWatch]]:
        """Guarded removal of the triggered instances.

        The ``Remove`` is conditioned on every removed instance still
        matching the queried snapshot (id AND session list — the same
        device as the GC's :meth:`remove_instance`): a client joining an
        instance *between the query and the removal* would otherwise be
        swept away silently — never notified, its re-arm (and any cache
        entry the instance guards) dead forever.  On a conflict the item
        is re-read and the removal retried, so the late joiner is included
        in the delivery.  The guard costs nothing when there is no race:
        the same single conditional write the unguarded form issued.
        """
        while True:
            if not watch_item:
                return []
            instances = watch_item.get("inst", {})
            triggered: List[TriggeredWatch] = []
            removals = []
            guard = None
            for wtype, event in type_events:
                inst = instances.get(wtype.value)
                if not inst or not inst.get("sessions"):
                    continue
                triggered.append(TriggeredWatch(
                    watch_id=inst["id"], path=path, wtype=wtype,
                    event=event, sessions=list(inst["sessions"]),
                ))
                removals.append(Remove(f"inst.{wtype.value}"))
                pin = (Attr(f"inst.{wtype.value}.id") == inst["id"]) & \
                    (Attr(f"inst.{wtype.value}.sessions") ==
                     list(inst["sessions"]))
                guard = pin if guard is None else (guard & pin)
            if not removals:
                return []
            try:
                yield from self.store.update_item(
                    ctx, self.table_for(path), path, updates=removals,
                    condition=guard, payload_kb=0.064,
                )
            except ConditionFailed:
                watch_item = yield from self.store.get_item(
                    ctx, self.table_for(path), path)
                continue
            return triggered


# --------------------------------------------------------------------------
# Client-side self-re-arming watch decorators (kazoo parity)
# --------------------------------------------------------------------------

class _RearmingWatch:
    """Shared machinery of :class:`DataWatch` / :class:`ChildrenWatch`.

    One-shot watches put the re-arm burden on the application; these
    decorators carry it instead: every delivery re-registers the watch and
    re-reads through the client's ordinary read pipeline.  The registration
    happens *before* the re-read (inside ``exists``/``get_data``/
    ``get_children``, which register ahead of the storage fetch), so a
    change racing the re-arm is never lost: it either reaches the fresh
    read or fires the new instance — mirroring the cache-watch protocol.

    Deliveries arriving while a refresh is still running (its nested reads
    pump the event loop) are folded into one trailing refresh instead of
    recursing, so the user callback observes reads in issue order and its
    last invocation always reflects the newest read.
    """

    def __init__(self, client, path: str,
                 func: Optional[Callable] = None) -> None:
        validate_path(path)
        self._client = client
        self._path = path
        self._func: Optional[Callable] = None
        self._stopped = False
        self._busy = False
        self._again = False
        #: Watch notifications received (re-arm accounting for tests).
        self.deliveries = 0
        if func is not None:
            self(func)

    def __call__(self, func: Callable) -> Callable:
        if self._func is not None:
            raise BadArgumentsError("watch already has a callback")
        self._func = func
        self._refresh(initial=True)
        return func

    def stop(self) -> None:
        """Stop watching; the armed instance may still fire once more but
        the callback is no longer invoked."""
        self._stopped = True

    @property
    def active(self) -> bool:
        return not self._stopped and not self._client.closed

    def _on_event(self, _event) -> None:
        self.deliveries += 1
        if not self.active:
            return
        if self._busy:
            self._again = True  # fold into the running refresh's trailing pass
            return
        self._refresh()

    def _refresh(self, initial: bool = False) -> None:
        self._busy = True
        try:
            while True:
                self._again = False
                try:
                    keep = self._deliver(self._read_and_rearm(), initial)
                except SessionClosedError:
                    self._stopped = True
                    return
                initial = False
                if keep is False:
                    self._stopped = True
                    return
                if not self._again or not self.active:
                    return
        finally:
            self._busy = False

    # Subclass hooks -------------------------------------------------------
    def _read_and_rearm(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _deliver(self, result, initial: bool):  # pragma: no cover - abstract
        raise NotImplementedError


class DataWatch(_RearmingWatch):
    """Self-re-arming data watch, kazoo-style::

        @client.DataWatch("/config")
        def watcher(data, stat):
            ...  # called now, and again on every change

    The callback runs at registration with the current state and after
    every subsequent change; a missing node is reported as ``(None,
    None)`` and the watch keeps waiting for its creation.  Returning
    ``False`` from the callback (or calling :meth:`stop`) ends the watch.

    The re-arm rides an EXISTS watch — it fires on create, data change and
    delete alike, exactly the events a data watch must observe — and the
    data itself is fetched with a plain ``get_data`` afterwards, so reads
    may be served by the client cache.
    """

    def _read_and_rearm(self):
        # Arm first (exists registers the watch before its storage read),
        # then fetch: nothing can change unobserved in between.
        stat = self._client.exists(self._path, watch=self._on_event)
        if stat is None:
            return None, None
        try:
            return self._client.get_data(self._path)
        except NoNodeError:
            # Deleted while the fetch was in flight: the armed instance
            # (or its in-flight delivery) reports the follow-up.
            return None, None

    def _deliver(self, result, initial: bool):
        data, stat = result
        return self._func(data, stat)


class ChildrenWatch(_RearmingWatch):
    """Self-re-arming children watch, kazoo-style::

        @client.ChildrenWatch("/workers")
        def watcher(children):
            ...  # called now, and again on every membership change

    ``send_event=True`` passes the triggering
    :class:`~repro.faaskeeper.model.WatchedEvent` as a second argument
    (None for the initial call).  The watched node must exist at
    registration (:class:`NoNodeError` otherwise); the watch stops when
    the node is deleted.  Returning ``False`` stops it too.
    """

    def __init__(self, client, path: str, func: Optional[Callable] = None,
                 send_event: bool = False) -> None:
        self._send_event = send_event
        self._last_event = None
        self._started = False
        super().__init__(client, path, func)

    def _on_event(self, event) -> None:
        self._last_event = event
        super()._on_event(event)

    def _read_and_rearm(self):
        try:
            return self._client.get_children(self._path,
                                             watch=self._on_event)
        except NoNodeError:
            if not self._started:
                raise  # registration on a missing node is a caller error
            return None  # node deleted: the watch dies with it

    def _deliver(self, children, initial: bool):
        self._started = True
        if children is None:
            return False  # deleted underneath us: stop
        if self._send_event:
            return self._func(children, None if initial else self._last_event)
        return self._func(children)
