"""FaaSKeeper client library (Section 3.5), modeled after kazoo's API.

Reads go straight to the region-local user store; writes travel through the
session's FIFO queue to the follower function.  Every write — single ops
and ``multi()``/``transaction()`` batches alike — is a typed
:class:`~repro.faaskeeper.model.Operation` envelope riding one generic
submission pipeline.  The library recreates the
ordering work a ZooKeeper server would do for the client:

* **FIFO completion** — results are released in request order: a read
  issued after a write never completes before it (the "lightweight queue on
  the client");
* **watch/data ordering (Z4)** — a read that returns a node whose epoch
  set contains one of *this session's* undelivered watch notifications is
  stalled until that notification arrives;
* **MRD tracking** — the most-recently-delivered txid gives the fast path:
  nodes older than everything we have seen need no stall.

The real client runs three background threads (send / receive / order); in
the simulation those are the send process, the delivery callbacks, and the
completion chain respectively.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Set, Tuple

from ..cloud.context import OpContext
from ..sim.kernel import AnyOf
from .cache import ClientReadCache
from .exceptions import (
    AccessDeniedError,
    BadArgumentsError,
    BadVersionError,
    FaaSKeeperError,
    NoChildrenForEphemeralsError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    RequestFailedError,
    RetryFailedError,
    RolledBackError,
    SessionClosedError,
    TransactionFailedError,
)
from .model import (
    CheckOp,
    CreateOp,
    DeleteOp,
    KeeperState,
    NodeStat,
    Operation,
    SetDataOp,
    WriteResult,
    acl_allows,
    parent_path,
    Request,
    Response,
    WatchedEvent,
    WatchType,
    validate_path,
)

__all__ = ["FaaSKeeperClient", "FKFuture", "Transaction", "WriteResult",
           "ClientEvent", "SessionRetry"]

_ERROR_MAP = {
    "no_node": NoNodeError,
    "node_exists": NodeExistsError,
    "bad_version": BadVersionError,
    "not_empty": NotEmptyError,
    "no_children_for_ephemerals": NoChildrenForEphemeralsError,
    "session_closed": SessionClosedError,
    "system_failure": RequestFailedError,
    "system_busy": RequestFailedError,
    "bad_arguments": RequestFailedError,
    "access_denied": AccessDeniedError,
    "rolled_back": RolledBackError,
}


def _error_for(code: str, context: str) -> FaaSKeeperError:
    return _ERROR_MAP.get(code, RequestFailedError)(f"{context}: {code}")


class Transaction:
    """Kazoo-style transaction builder: queue ops, then ``commit()``.

    All queued operations commit atomically — one queue message, one
    follower validation pass, one leader batch — or none do.  ``commit()``
    returns one result per op (kazoo semantics: failures come back as
    exception *instances* in the list, nothing is raised); use
    :meth:`FaaSKeeperClient.multi` for the raising variant.  The builder
    also works as a context manager, committing on clean exit — in that
    form an abort raises :class:`TransactionFailedError` (there is no
    results list to hand back, and a guarded swap must not fail silently).
    """

    def __init__(self, client: "FaaSKeeperClient") -> None:
        self._client = client
        self.operations: List[Operation] = []
        self._committed = False

    # ------------------------------------------------------------ builders
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequence: bool = False, acl: Optional[dict] = None) -> "Transaction":
        self.operations.append(CreateOp(path, bytes(data), ephemeral, sequence, acl))
        return self

    def set_data(self, path: str, data: bytes, version: int = -1) -> "Transaction":
        self.operations.append(SetDataOp(path, bytes(data), version))
        return self

    def delete(self, path: str, version: int = -1) -> "Transaction":
        self.operations.append(DeleteOp(path, version))
        return self

    def check(self, path: str, version: int = -1) -> "Transaction":
        self.operations.append(CheckOp(path, version))
        return self

    # ------------------------------------------------------------ commit
    def commit_async(self) -> "FKFuture":
        if self._committed:
            raise BadArgumentsError("transaction already committed")
        future = self._client.multi_async(self.operations)
        self._committed = True  # only once actually submitted
        return future

    def commit(self) -> List[Any]:
        """Commit; per-op results with failures embedded, kazoo-style."""
        try:
            return self.commit_async().wait()
        except TransactionFailedError as exc:
            return exc.results

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None and self.operations and not self._committed:
            # Unlike commit(), the with-form cannot hand embedded results
            # back to the caller, so a rolled-back batch must raise.
            self.commit_async().wait()


class FKFuture:
    """Handle for an in-flight operation (async API)."""

    def __init__(self, client: "FaaSKeeperClient") -> None:
        self._client = client
        self.event = client.env.event()
        self.event.defused()

    @property
    def done(self) -> bool:
        return self.event.triggered

    def wait(self) -> Any:
        """Drive the simulation until the result is available; returns it
        (or raises the operation's error)."""
        return self._client.cloud.env.run(until=self.event)


class ClientEvent:
    """``threading.Event`` lookalike whose ``wait()`` drives the simulation.

    The real client library hands recipes a waitable object from its handler
    (kazoo's ``client.handler.event_object()``); the simulation's analogue
    pumps the virtual clock instead of blocking a thread.  ``wait()`` is the
    synchronous form (runs the event loop until set or timed out);
    ``co_wait()`` is the generator form for callers that are themselves
    simulation processes (the recipe contention tests and benchmarks).
    """

    def __init__(self, client: "FaaSKeeperClient") -> None:
        self._client = client
        self._flag = False
        self._waiters: List[Any] = []

    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        self._flag = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(None)

    def clear(self) -> None:
        self._flag = False

    def _arm(self):
        event = self._client.env.event()
        event.defused()
        self._waiters.append(event)
        return event

    def wait(self, timeout_ms: Optional[float] = None) -> bool:
        """Run the simulation until the event is set (True) or the timeout
        elapses (False)."""
        if self._flag:
            return True
        env = self._client.env
        event = self._arm()
        if timeout_ms is None:
            env.run(until=event)
        else:
            env.run(until=AnyOf(env, [event, env.timeout(timeout_ms)]))
        return self._flag

    def co_wait(self, timeout_ms: Optional[float] = None) -> Generator:
        """Generator form of :meth:`wait` for simulation-process callers."""
        if self._flag:
            return True
        env = self._client.env
        event = self._arm()
        if timeout_ms is None:
            yield event
        else:
            yield AnyOf(env, [event, env.timeout(timeout_ms)])
        return self._flag


class SessionRetry:
    """Retry helper for transient coordination failures (kazoo's
    ``KazooRetry``).

    Recipes wrap their storage-visible steps in the session's retry so a
    rejected request (``system_busy`` lock contention, a ``system_failure``
    drop — both :class:`RequestFailedError`) or an aborted ``multi()``
    (:class:`TransactionFailedError`) is re-attempted with exponential
    backoff instead of surfacing.  Extra exception types — e.g.
    :class:`BadVersionError` for compare-and-swap loops like
    ``recipes.Counter`` — ride in via ``retry_exceptions``.  Backoff sleeps
    advance the virtual clock through :meth:`FaaSKeeperClient.sleep`, so
    retries stay deterministic.
    """

    #: Errors every retry loop treats as transient.
    DEFAULT_EXCEPTIONS = (RequestFailedError, TransactionFailedError)

    def __init__(self, client: "FaaSKeeperClient", max_tries: int = 5,
                 delay_ms: float = 50.0, backoff: float = 2.0,
                 max_delay_ms: float = 2_000.0,
                 retry_exceptions: Tuple[type, ...] = ()) -> None:
        if max_tries < 1:
            raise BadArgumentsError(f"max_tries must be >= 1, got {max_tries}")
        self.client = client
        self.max_tries = max_tries
        self.delay_ms = delay_ms
        self.backoff = backoff
        self.max_delay_ms = max_delay_ms
        self.retry_exceptions = self.DEFAULT_EXCEPTIONS + tuple(retry_exceptions)

    def copy(self, **overrides) -> "SessionRetry":
        """A derived retry with some knobs replaced (kazoo's ``copy()``)."""
        kwargs = dict(
            max_tries=self.max_tries, delay_ms=self.delay_ms,
            backoff=self.backoff, max_delay_ms=self.max_delay_ms,
            retry_exceptions=tuple(self.retry_exceptions[
                len(self.DEFAULT_EXCEPTIONS):]),
        )
        kwargs.update(overrides)
        return SessionRetry(self.client, **kwargs)

    def __call__(self, func: Callable, *args, **kwargs) -> Any:
        delay = self.delay_ms
        last: Optional[BaseException] = None
        for attempt in range(self.max_tries):
            try:
                return func(*args, **kwargs)
            except self.retry_exceptions as exc:
                last = exc
                if attempt == self.max_tries - 1:
                    break
                self.client.sleep(delay)
                delay = min(delay * self.backoff, self.max_delay_ms)
        raise RetryFailedError(
            f"{getattr(func, '__name__', func)!r} still failing after "
            f"{self.max_tries} tries") from last


class FaaSKeeperClient:
    """One session's client handle.  Obtain via ``service.connect()``."""

    def __init__(self, service, session_id: str, region: str, queue) -> None:
        self.service = service
        self.cloud = service.cloud
        self.env = service.cloud.env
        self.session_id = session_id
        self.region = region
        self.queue = queue
        self.ctx = OpContext(region=region)
        self.alive = True          # heartbeat answers (tests flip this)
        self.closed = False
        #: Virtual instant the session closed (client close or eviction) —
        #: the swarm harness derives eviction lag from it.
        self.closed_at: Optional[float] = None
        self.mrd = 0               # most-recently-delivered txid

        self._rid = 0
        self._pending: Dict[int, Any] = {}          # rid -> internal Event
        self._chain = None                          # completion-order tail
        self._send_tail = None                      # submission-order tail
        self._write_tail = None                     # last write's response
        self._registered: Dict[str, List[Callable]] = {}  # watch id -> callbacks
        self._delivered: Set[str] = set()
        self._wait_events: Dict[str, Any] = {}      # watch id -> stall Event
        self._watch_ids: Dict[Tuple[str, str], str] = {}  # (path, type) -> wid
        self.watch_events: List[WatchedEvent] = []  # delivery log (tests)
        #: rid -> txid of acked writes not yet replicated into this
        #: client's region (distributor deployments only): the read
        #: barrier waits on the region's visibility watermark for them.
        self._await_visible: Dict[int, int] = {}
        config = service.config
        self._cache: Optional[ClientReadCache] = (
            ClientReadCache(config.client_cache_entries,
                            config.client_cache_kb)
            if config.client_cache_enabled else None)
        queue.on_drop = self._on_drop

        # --- session lifecycle (kazoo parity) -----------------------------
        self._state = KeeperState.CONNECTED
        self._listeners: List[Callable[[KeeperState], Any]] = []
        #: True once the heartbeat evictor (not the client) closed the
        #: session; the LOST transition is how the client learns of it.
        self.evicted = False
        #: Default retry policy recipes use for transient failures.
        self.retry = SessionRetry(self)
        # Kazoo-style watch decorators bound to this session:
        #     @client.DataWatch("/path")
        #     def watcher(data, stat): ...
        from .watches import ChildrenWatch, DataWatch
        self.DataWatch = functools.partial(DataWatch, self)
        self.ChildrenWatch = functools.partial(ChildrenWatch, self)

    # ------------------------------------------------------------ lifecycle state
    @property
    def state(self) -> KeeperState:
        """Current session state (CONNECTED / SUSPENDED / LOST)."""
        return self._state

    def add_listener(self, listener: Callable[[KeeperState], Any]) -> None:
        """Register a state listener, called with the new
        :class:`KeeperState` on every transition (kazoo semantics: the
        listener observes transitions, it is not called at registration)."""
        if not callable(listener):
            raise BadArgumentsError(f"listener must be callable: {listener!r}")
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[KeeperState], Any]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _transition(self, state: KeeperState) -> None:
        """Move the session state machine; LOST is terminal.  Pure client
        bookkeeping: no simulation events, so pipelines keep their latency
        fingerprints bit-for-bit."""
        if state == self._state or self._state == KeeperState.LOST:
            return
        self._state = state
        for listener in list(self._listeners):
            try:
                listener(state)
            except Exception:
                pass  # a broken listener must not poison the session

    # ------------------------------------------------------------ plumbing
    def _next_rid(self) -> int:
        self._rid += 1
        return self._rid

    def _mark_closed(self, evicted: bool = False) -> None:
        self.closed = True
        self.closed_at = self.env.now
        if evicted:
            self.evicted = True
        if self._cache is not None:
            # A cached entry must not outlive its session: the watches
            # guarding it stop being delivered once the session is closed
            # (the GC sweeper reclaims the instances server-side).
            self._cache.clear()
        # Session death — client close or heartbeat eviction alike — is the
        # LOST transition: ephemeral nodes are gone, the session id is dead.
        self._transition(KeeperState.LOST)

    def _on_drop(self, message) -> None:
        """Poison request dropped by the queue: fail its future."""
        # The service gave up on a request without an answer: the session
        # may still exist, but the connection is in doubt.
        self._transition(KeeperState.SUSPENDED)
        body = message.body
        if isinstance(body, dict) and body.get("rid", -1) >= 0:
            self._deliver_response(Response(
                session=self.session_id, rid=body["rid"], ok=False,
                error="system_failure"))

    def _deliver_response(self, response: Response) -> None:
        event = self._pending.pop(response.rid, None)
        if event is None or event.triggered:
            return  # duplicate delivery (redelivered batch): first wins
        if response.ok and not self.closed:
            # A successful round trip heals a SUSPENDED session (no-op in
            # the common CONNECTED case; LOST is terminal).
            self._transition(KeeperState.CONNECTED)
        if response.txid:
            self.mrd = max(self.mrd, response.txid)
            board = self.service.visibility_board
            if response.ok and board is not None:
                # Acked before replication (ack_policy="on_commit"): reads
                # must wait for the region watermark to cover this txid.
                # Prune landed entries here too, so a write-only session's
                # tracking stays bounded by its unreplicated backlog.
                self._await_visible = {
                    rid: txid for rid, txid in self._await_visible.items()
                    if not board.visible(self.region, txid)}
                if not board.visible(self.region, response.txid):
                    self._await_visible[response.rid] = response.txid
        event.succeed(response)

    def _deliver_watch(self, watch_id: str, event: WatchedEvent) -> None:
        self._delivered.add(watch_id)
        if self._cache is not None:
            # One-shot watch fired: every cache entry it guarded is stale.
            self._cache.invalidate_watch(watch_id)
        self.mrd = max(self.mrd, event.txid)
        self.watch_events.append(event)
        waiter = self._wait_events.pop(watch_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)
        for callback in self._registered.pop(watch_id, []):
            if callback is not None:
                callback(event)

    def _chained(self, generator) -> FKFuture:
        """Run ``generator``; release its result after all earlier results
        (the client-side FIFO completion queue)."""
        future = FKFuture(self)
        prev = self._chain
        self._chain = future.event

        def runner():
            error: Optional[BaseException] = None
            value: Any = None
            try:
                value = yield from generator
            except BaseException as exc:
                error = exc
            if prev is not None and not prev.processed:
                try:
                    yield prev
                except BaseException:
                    pass  # predecessor's failure belongs to its caller
            if error is not None:
                future.event.fail(error)
            else:
                future.event.succeed(value)

        self.env.process(runner(), name=f"client:{self.session_id}")
        return future

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosedError(self.session_id)

    # ------------------------------------------------------------ write ops
    def _prepare_write(self, request: Request):
        """Register the response event eagerly, so a read issued right after
        this write can wait for it (session read-your-writes)."""
        internal = self.env.event()
        internal.defused()
        self._pending[request.rid] = internal
        self._write_tail = internal
        return internal

    def shard_for(self, path: str) -> int:
        """Leader shard this client routes writes for ``path`` to."""
        return self.service.shard_of(path)

    def _multi_failure(self, request: Request,
                       response: Response) -> TransactionFailedError:
        """Map a failed multi response to per-op typed errors: the culprit's
        own error, RolledBackError for the members undone with it."""
        results: List[Any] = []
        if response.results:
            for res in response.results:
                results.append(_error_for(
                    res.get("error", response.error or "system_failure"),
                    f"{res.get('op')} {res.get('path')}"))
        else:
            # The envelope never reached validation (queue drop, leader
            # rejection): every member shares the envelope's failure.
            for d in request.ops or []:
                results.append(_error_for(
                    response.error or "system_failure",
                    f"{d.get('op')} {d.get('path')}"))
        return TransactionFailedError(
            f"multi of {len(request.ops or [])} ops: {response.error}",
            results=results)

    def _write_flow(self, request: Request, internal=None) -> Generator:
        """The one submission pipeline every write envelope rides."""
        if internal is None:
            internal = self._prepare_write(request)
        body = request.to_body()
        if self.service.config.leader_shards > 1:
            # Route annotation for the sharded pipeline: the client library
            # owns the partition map (hash of the top-level component) and
            # stamps each write with its target shard.  The follower routes
            # by the shard it recomputes from the final path and counts
            # disagreeing hints (``service.shard_hint_mismatches``) — e.g.
            # a stale client map, or a sequence suffix remapping a
            # top-level create.  A multi is stamped with its coordinator
            # shard (lowest shard id among the written paths).
            if request.ops is not None:
                body["shard_hint"] = self.service.multi_shard_of(
                    request.write_paths())
            else:
                body["shard_hint"] = self.shard_for(request.path)
        # The client's single send thread (Section 3.5): submissions of one
        # session enter the queue strictly in request order (Z2), while later
        # pipeline stages still overlap.
        prev_send = self._send_tail
        sent = self.env.event()
        sent.defused()
        self._send_tail = sent
        if prev_send is not None and not prev_send.processed:
            yield prev_send
        try:
            yield from self.queue.send(self.ctx, body, group=self.session_id,
                                       size_kb=request.size_kb)
        finally:
            if not sent.triggered:
                sent.succeed(None)
        response: Response = yield internal
        if not response.ok:
            if request.op == "multi":
                raise self._multi_failure(request, response)
            raise _error_for(response.error, f"{request.op} {request.path}")
        return response

    def _invalidate_written(self, op_name: Optional[str],
                            path: Optional[str]) -> None:
        """Read-your-writes through the cache: the instant this session's
        write is acknowledged, its cached images — and the parent's, whose
        child list a create/delete changed — are stale.  The system watch
        will also fire, but its delivery may trail the response; a read
        issued in between must already miss."""
        if self._cache is None or not path or op_name == "check":
            return  # a check writes nothing: its path's entries stay valid
        self._cache.invalidate_path(path)
        if op_name in ("create", "delete"):
            parent = parent_path(path)
            if parent:
                self._cache.invalidate_path(parent)

    def _submit_write(self, op: Operation) -> FKFuture:
        """Generic one-op submission: validate, wrap in a one-element
        envelope, ride the pipeline, map the typed result."""
        self._check_open()
        op.validate()
        req = Request.from_operation(self.session_id, self._next_rid(), op)
        internal = self._prepare_write(req)

        def flow():
            response = yield from self._write_flow(req, internal)
            self._invalidate_written(op.OP, response.path or op.path)
            return op.result_from_response(response)

        return self._chained(flow())

    def create_async(self, path: str, data: bytes = b"",
                     ephemeral: bool = False, sequence: bool = False,
                     acl: Optional[dict] = None) -> FKFuture:
        return self._submit_write(CreateOp(path, bytes(data), ephemeral,
                                           sequence, acl))

    def set_data_async(self, path: str, data: bytes,
                       version: int = -1) -> FKFuture:
        return self._submit_write(SetDataOp(path, bytes(data), version))

    def delete_async(self, path: str, version: int = -1) -> FKFuture:
        return self._submit_write(DeleteOp(path, version))

    # ------------------------------------------------------------ multi
    def multi_async(self, ops: Iterable[Operation]) -> FKFuture:
        """Submit an atomic transaction (ZooKeeper ``multi`` semantics).

        All member ops commit under one transaction id or none do.  The
        future resolves to one typed result per op, in op order; on failure
        it raises :class:`TransactionFailedError` whose ``results`` carry
        the per-op typed errors.
        """
        self._check_open()
        ops = list(ops)
        if not ops:
            raise BadArgumentsError("multi needs at least one operation")
        for op in ops:
            if not isinstance(op, Operation):
                raise BadArgumentsError(f"not an Operation: {op!r}")
            op.validate()
        req = Request.from_operations(self.session_id, self._next_rid(), ops)
        internal = self._prepare_write(req)

        def flow():
            response = yield from self._write_flow(req, internal)
            for res in response.results or []:
                self._invalidate_written(res.get("op"), res.get("path"))
            return [op.result_from_multi(res)
                    for op, res in zip(ops, response.results or [])]

        return self._chained(flow())

    def multi(self, ops: Iterable[Operation]) -> List[Any]:
        """Atomically commit ``ops``; returns per-op typed results or raises
        :class:`TransactionFailedError` (no op applied)."""
        return self.multi_async(ops).wait()

    def transaction(self) -> Transaction:
        """Kazoo-style transaction builder bound to this session."""
        return Transaction(self)

    # ------------------------------------------------------------ read ops
    def _register_watch(self, path: str, wtype: WatchType,
                        callback: Optional[Callable]) -> Generator:
        wid = yield from self.service.watch_registry.register(
            self.ctx, path, wtype, self.session_id)
        self._watch_ids[(path, wtype.value)] = wid
        self._registered.setdefault(wid, []).append(callback)
        return wid

    def _register_cache_watch(self, path: str, wtype: WatchType) -> Generator:
        """System watch guarding a cache entry.  If this session already
        holds an undelivered watch on the same instance (a user watch, or a
        previous cache miss whose entry was evicted), reuse it instead of
        appending the session to the instance again — one notification per
        session per instance, and no extra storage write."""
        wid = self._watch_ids.get((path, wtype.value))
        if wid is not None and wid in self._registered \
                and wid not in self._delivered:
            return wid
        return (yield from self._register_watch(path, wtype, None))

    def _stall_for_epoch(self, image: Dict[str, Any]) -> Generator:
        """Z4: hold the read until this session's pending notifications for
        the node's epoch have been delivered."""
        if image.get("modified_tx", 0) < self.mrd:
            # MRD fast path: strictly older than everything delivered.
            return None
        for wid in image.get("epoch", []):
            if wid in self._registered and wid not in self._delivered:
                waiter = self._wait_events.get(wid)
                if waiter is None:
                    waiter = self.env.event()
                    waiter.defused()
                    self._wait_events[wid] = waiter
                if not waiter.processed:
                    yield waiter
        return None

    def _write_barrier(self):
        """Events of the writes this client must see before a read starts.

        Single leader: responses arrive in request order, so the last
        prepared write's event covers all earlier ones.  Sharded pipeline:
        a coalesced write's response is deferred until its superseding
        write lands, which can reorder deliveries — the read then waits for
        *every* outstanding write issued before it, so an acknowledged-but-
        superseded write is never read stale.  Distributor deployments wait
        for every outstanding write too (acknowledgements may land out of
        request order under ``ack_policy="on_replicate"``), and
        :meth:`_await_visibility` additionally holds the read until the
        region's ``replicated_tx`` watermark covers the acked writes.
        """
        if self.service.config.leader_shards > 1 \
                or self.service.distribution is not None:
            return [self._pending[rid] for rid in sorted(self._pending)]
        return [self._write_tail] if self._write_tail is not None else []

    def _read_image(self, path: str, barrier=None,
                    cache_wtype: Optional[WatchType] = None,
                    require_wid: Optional[str] = None,
                    rid_cut: Optional[int] = None) -> Generator:
        # Session FIFO processing (ZooKeeper read-your-writes): the fetch
        # starts only after the responses of all earlier writes arrived, so
        # a read following a write observes it.  Writes themselves pipeline.
        for pending_write in (barrier if barrier is not None
                              else self._write_barrier()):
            if pending_write is not None and not pending_write.processed:
                try:
                    yield pending_write
                except Exception:
                    pass  # a failed write belongs to its own caller
        # Distributor deployments: acked ≠ readable — additionally wait for
        # the region's visibility watermark (before consulting the cache,
        # so hits observe the same barrier as storage reads).
        yield from self._await_visibility(
            self._rid if rid_cut is None else rid_cut)
        if cache_wtype is not None and self._cache is not None:
            cached = self._cache.lookup(path, cache_wtype,
                                        require_watch_id=require_wid)
            if cached is not None:
                # A hit replays the uncached gates against the cached image:
                # ACL, then the Z4 epoch stall — only the storage round trip
                # is saved.
                if not acl_allows(cached.get("acl"), "read", self.session_id):
                    raise AccessDeniedError(path)
                yield from self._stall_for_epoch(cached)
                data_kb = len(cached.get("data", b"") or b"") / 1024.0
                yield self.env.timeout(0.05 + 0.002 * data_kb)
                return cached
        cache_wid: Optional[str] = None
        if cache_wtype is not None and self._cache is not None:
            # Register the guarding watch BEFORE the read: any write that
            # commits after this point fires it, so an entry can never be
            # installed without a live invalidation channel.
            cache_wid = yield from self._register_cache_watch(path, cache_wtype)
        image = yield from self.service.user_store.read_node(
            self.ctx, self.region, path)
        if image is None or image.get("deleted"):
            return None
        # Read permissions are enforced at the storage boundary (the paper:
        # "read permissions can be enforced with cloud storage ACLs").
        if not acl_allows(image.get("acl"), "read", self.session_id):
            raise AccessDeniedError(path)
        yield from self._stall_for_epoch(image)
        # Client-library overhead: result sorting, watch bookkeeping and
        # deserialization add ~2% (Section 5.3.1).
        data_kb = len(image.get("data", b"") or b"") / 1024.0
        yield self.env.timeout(0.05 + 0.002 * data_kb)
        if cache_wid is not None and cache_wid not in self._delivered:
            # The watch may have fired while the read was in flight (a
            # fan-out race): an already-consumed guard must not admit the
            # entry, or it would never be invalidated.
            self._cache.admit(path, cache_wtype, image, cache_wid)
        return image

    def _read_barrier(self) -> Optional[List]:
        """Snapshot the write barrier at read-issue time for the sharded
        and distributor pipelines (a read must not wait for writes issued
        after it); the single-leader path keeps its execution-time tail
        capture."""
        if self.service.config.leader_shards > 1 \
                or self.service.distribution is not None:
            return self._write_barrier()
        return None

    def _await_visibility(self, rid_cut: int) -> Generator:
        """Distributor deployments: hold the read until this session's
        acked writes (issued before the read — ``rid_cut``) are covered by
        the ``replicated_tx`` visibility watermark of the region the read
        is served from.  The write barrier already waited for the
        responses, so every relevant write has an entry here."""
        board = self.service.visibility_board
        if board is None or not self._await_visible:
            return None
        # Snapshot the items: response deliveries rebuild the dict while
        # this generator is suspended in board.wait.
        for rid, txid in sorted(self._await_visible.items()):
            if rid > rid_cut:
                continue
            yield from board.wait(self.region, txid)
        self._await_visible = {
            rid: txid for rid, txid in self._await_visible.items()
            if not board.visible(self.region, txid)}
        return None

    def get_data_async(self, path: str,
                       watch: Optional[Callable] = None) -> FKFuture:
        self._check_open()
        validate_path(path)
        barrier = self._read_barrier()
        rid_cut = self._rid

        def flow():
            wid = None
            if watch is not None:
                wid = yield from self._register_watch(path, WatchType.DATA,
                                                      watch)
            image = yield from self._read_image(path, barrier,
                                                cache_wtype=WatchType.DATA,
                                                require_wid=wid,
                                                rid_cut=rid_cut)
            if image is None:
                raise NoNodeError(path)
            return image.get("data", b""), NodeStat.from_image(image)

        return self._chained(flow())

    def exists_async(self, path: str,
                     watch: Optional[Callable] = None) -> FKFuture:
        self._check_open()
        validate_path(path)
        barrier = self._read_barrier()
        rid_cut = self._rid
        # An exists() is a stat of the same node image get_data fetches, so
        # it shares the (path, DATA) cache entry and its DATA-watch guard —
        # a hit saves the user-store round trip, a miss admits an entry
        # later get_data calls hit.  Only the watch-less form is cacheable:
        # a caller arming a fresh EXISTS watch must not be handed an image
        # older than the change that consumed the previous instance (the
        # same rule require_watch_id enforces for get_data, but the EXISTS
        # instance id is incomparable with the entry's DATA guard).
        cache_wtype = WatchType.DATA if watch is None else None

        def flow():
            if watch is not None:
                yield from self._register_watch(path, WatchType.EXISTS, watch)
            image = yield from self._read_image(path, barrier,
                                                cache_wtype=cache_wtype,
                                                rid_cut=rid_cut)
            if image is None:
                return None
            return NodeStat.from_image(image)

        return self._chained(flow())

    def get_children_async(self, path: str,
                           watch: Optional[Callable] = None) -> FKFuture:
        self._check_open()
        validate_path(path)
        barrier = self._read_barrier()
        rid_cut = self._rid

        def flow():
            wid = None
            if watch is not None:
                wid = yield from self._register_watch(path, WatchType.CHILDREN,
                                                      watch)
            image = yield from self._read_image(
                path, barrier, cache_wtype=WatchType.CHILDREN,
                require_wid=wid, rid_cut=rid_cut)
            if image is None:
                raise NoNodeError(path)
            return sorted(image.get("children", []))

        return self._chained(flow())

    # ------------------------------------------------------------ helpers
    def sleep(self, delay_ms: float) -> None:
        """Advance the virtual clock by ``delay_ms`` (the simulation's
        stand-in for ``time.sleep`` — retry backoffs and recipe hold times
        go through here so runs stay deterministic)."""
        if delay_ms < 0:
            raise BadArgumentsError(f"negative delay {delay_ms!r}")
        env = self.env
        env.run(until=env.now + delay_ms)

    def event_object(self) -> ClientEvent:
        """A waitable event recipes block on (kazoo's
        ``client.handler.event_object()``); see :class:`ClientEvent`."""
        return ClientEvent(self)

    def ensure_path(self, path: str, acl: Optional[dict] = None) -> bool:
        """Recursively create ``path`` and any missing ancestors (kazoo's
        ``ensure_path``).  Existing nodes are left untouched; concurrent
        creators racing on a segment are absorbed (`NodeExistsError` means
        someone else won, which is just as good).  Returns True."""
        self._check_open()
        validate_path(path)
        if path == "/":
            return True
        prefix = ""
        for segment in path[1:].split("/"):
            prefix += "/" + segment
            if self.exists(prefix) is not None:
                continue
            try:
                self.create(prefix, b"", acl=acl)
            except NodeExistsError:
                pass
        return True

    def co_ensure_path(self, path: str,
                       acl: Optional[dict] = None) -> Generator:
        """Generator form of :meth:`ensure_path` for simulation-process
        callers (the recipe cores)."""
        self._check_open()
        validate_path(path)
        if path == "/":
            return True
        prefix = ""
        for segment in path[1:].split("/"):
            prefix += "/" + segment
            stat = yield self.exists_async(prefix).event
            if stat is not None:
                continue
            try:
                yield self.create_async(prefix, b"", acl=acl).event
            except NodeExistsError:
                pass
        return True

    # ------------------------------------------------------------ lifecycle
    def close_async(self) -> FKFuture:
        self._check_open()
        req = Request(session=self.session_id, rid=self._next_rid(),
                      op="close_session")

        def flow():
            yield from self._write_flow(req)
            self._mark_closed()
            return None

        return self._chained(flow())

    # ------------------------------------------------------------ sync API
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequence: bool = False, acl: Optional[dict] = None) -> str:
        """Create a node; returns the (possibly sequence-suffixed) path.

        ``acl`` maps permissions (read/write/create/delete) to lists of
        session ids, with ``"world"`` as the wildcard; None = open access.
        """
        return self.create_async(path, data, ephemeral, sequence, acl).wait()

    def get_acl_async(self, path: str) -> FKFuture:
        self._check_open()
        validate_path(path)
        barrier = self._read_barrier()
        rid_cut = self._rid

        def flow():
            image = yield from self._read_image(path, barrier,
                                                rid_cut=rid_cut)
            if image is None:
                raise NoNodeError(path)
            return image.get("acl")

        return self._chained(flow())

    def get_acl(self, path: str) -> Optional[dict]:
        """Read a node's ACL (None = open access)."""
        return self.get_acl_async(path).wait()

    def set_data(self, path: str, data: bytes, version: int = -1) -> WriteResult:
        """Replace node data, optionally conditional on ``version``."""
        return self.set_data_async(path, data, version).wait()

    def delete(self, path: str, version: int = -1) -> None:
        """Delete a (childless) node."""
        return self.delete_async(path, version).wait()

    def get_data(self, path: str,
                 watch: Optional[Callable] = None) -> Tuple[bytes, NodeStat]:
        """Read node data + stat; optionally register a data watch."""
        return self.get_data_async(path, watch).wait()

    def exists(self, path: str,
               watch: Optional[Callable] = None) -> Optional[NodeStat]:
        """Stat a node (None when absent); optionally register an exists watch."""
        return self.exists_async(path, watch).wait()

    def get_children(self, path: str,
                     watch: Optional[Callable] = None) -> List[str]:
        """List child names; optionally register a children watch."""
        return self.get_children_async(path, watch).wait()

    def close(self) -> None:
        """Close the session; ephemeral nodes are deleted by the system."""
        return self.close_async().wait()

    # Context-manager convenience.
    def __enter__(self) -> "FaaSKeeperClient":
        return self

    def __exit__(self, *exc) -> None:
        if not self.closed:
            self.close()
