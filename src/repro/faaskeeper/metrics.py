"""Prometheus-style metrics registry: first-class observability.

Before this module every pipeline stage kept its own ad-hoc counters
(``WatchFanoutLogic.deliveries_by_shard``, ``DistributorLogic.batches``,
``SnapshotManager.log_appends``, ...) and ``cost_breakdown()`` reached
straight into the cost meter — there was no single place to ask "what is
this deployment doing?".  :class:`MetricsRegistry` replaces that with the
Prometheus data model (Counter / Gauge / Histogram with fixed buckets,
each optionally labelled), one registry per deployment:

* stage logics increment registry counters instead of bare attributes
  (the old attribute names survive as read-only properties, so existing
  tests and benches keep working);
* every deployed function's timing segments (``fctx.record``) feed one
  labelled histogram via the runtime's ``on_segment`` probe — the data
  behind Figure 10 / Table 3, now queryable per stage at runtime;
* values that already live elsewhere (the cost meter, per-session cache
  counters, function invocation counts) are exposed through *callback*
  metrics (:meth:`_Child.set_function`) sampled at snapshot time, the
  same device as a Prometheus collector;
* ``service.metrics_snapshot()`` returns the whole registry as one
  stable, JSON-able dict and ``service.metrics_text()`` renders the
  Prometheus text exposition format.

Metrics are pure Python bookkeeping: no simulated latency, no RNG draws,
no billed traffic — instrumenting a pipeline cannot change its
fingerprint, which is what lets the registry ride inside the
bit-for-bit-gated default deployment.
"""

from __future__ import annotations

import math
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Type, TypeVar, cast)

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram",
           "DEFAULT_BUCKETS"]

#: Default histogram buckets (ms-scale latencies; +Inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0)


def _label_key(labelnames: Sequence[str], labelvalues: Sequence[Any]) -> str:
    """Stable string key for one label combination (Prometheus inner
    syntax: ``a="1",b="x"``; empty string for unlabelled metrics)."""
    return ",".join(f'{n}="{v}"' for n, v in zip(labelnames, labelvalues))


class _Child:
    """One (metric, label combination): holds the actual value.

    ``set_function`` turns the child into a callback metric: its value is
    computed by ``fn()`` at read time instead of being stored — used to
    expose counters maintained elsewhere (the cost meter, per-session
    caches, the function runtime) without double bookkeeping.
    """

    __slots__ = ("_value", "_fn", "_sum", "_count", "_bucket_counts",
                 "_buckets")

    def __init__(self, buckets: Optional[Tuple[float, ...]] = None) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._buckets = buckets
        if buckets is not None:
            self._sum = 0.0
            self._count = 0
            self._bucket_counts = [0] * (len(buckets) + 1)  # + [+Inf]

    # ------------------------------------------------------------ scalar
    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def set_function(self, fn: Callable[[], float]) -> "_Child":
        self._fn = fn
        return self

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set(self, value: float) -> None:
        self._value = float(value)

    # ------------------------------------------------------------ histogram
    def observe(self, value: float) -> None:
        assert self._buckets is not None, "observe() on a non-histogram"
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                self._bucket_counts[i] += 1
                return
        self._bucket_counts[-1] += 1

    def histogram_snapshot(self) -> Dict[str, Any]:
        assert self._buckets is not None, "snapshot of a non-histogram"
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self._buckets, self._bucket_counts):
            running += count
            cumulative[_fmt_bound(bound)] = running
        cumulative["+Inf"] = self._count
        return {"count": self._count, "sum": self._sum,
                "buckets": cumulative}

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus
        ``histogram_quantile``): enough for p50/p99 bench assertions."""
        assert self._buckets is not None, "quantile of a non-histogram"
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        lower = 0.0
        for bound, count in zip(self._buckets, self._bucket_counts):
            if running + count >= target:
                frac = (target - running) / count if count else 0.0
                return lower + (bound - lower) * frac
            running += count
            lower = bound
        return self._buckets[-1]


def _fmt_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class _Metric:
    """Base of the three metric kinds: name, help, labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._children: Dict[Tuple[Any, ...], _Child] = {}
        if not self.labelnames:
            self._children[()] = _Child(buckets)

    # ------------------------------------------------------------ children
    def labels(self, *args: Any, **kwargs: Any) -> _Child:
        if args and kwargs:
            raise ValueError("pass label values positionally or by name")
        if kwargs:
            missing = set(self.labelnames) - set(kwargs)
            extra = set(kwargs) - set(self.labelnames)
            if missing or extra:
                raise ValueError(
                    f"{self.name}: labels {sorted(kwargs)} != "
                    f"declared {list(self.labelnames)}")
            values = tuple(kwargs[n] for n in self.labelnames)
        else:
            if len(args) != len(self.labelnames):
                raise ValueError(
                    f"{self.name}: expected {len(self.labelnames)} label "
                    f"values, got {len(args)}")
            values = tuple(args)
        child = self._children.get(values)
        if child is None:
            child = _Child(self._buckets)
            self._children[values] = child
        return child

    def items(self) -> Iterator[Tuple[Tuple[Any, ...], _Child]]:
        return iter(sorted(self._children.items(),
                           key=lambda kv: tuple(str(v) for v in kv[0])))

    # Unlabelled convenience passthroughs.
    def _solo(self) -> _Child:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled: call .labels() first")
        return self._children[()]

    @property
    def value(self) -> float:
        return self._solo().value

    def set_function(self, fn: Callable[[], float]) -> "_Metric":
        self._solo().set_function(fn)
        return self

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for labelvalues, child in self.items():
            key = _label_key(self.labelnames, labelvalues)
            if self._buckets is not None:
                values[key] = child.histogram_snapshot()
            else:
                values[key] = child.value
        return {"type": self.kind, "help": self.help, "values": values}

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for labelvalues, child in self.items():
            inner = _label_key(self.labelnames, labelvalues)
            if self._buckets is None:
                label = f"{{{inner}}}" if inner else ""
                lines.append(f"{self.name}{label} {_fmt_value(child.value)}")
                continue
            snap = child.histogram_snapshot()
            sep = "," if inner else ""
            for bound, count in snap["buckets"].items():
                lines.append(
                    f'{self.name}_bucket{{{inner}{sep}le="{bound}"}} {count}')
            label = f"{{{inner}}}" if inner else ""
            lines.append(f"{self.name}_sum{label} {_fmt_value(snap['sum'])}")
            lines.append(f"{self.name}_count{label} {snap['count']}")
        return lines


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


M = TypeVar("M", bound=_Metric)


class Counter(_Metric):
    """Monotonically increasing count (resets only with the deployment)."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)


class Gauge(_Metric):
    """A value that can go up and down (or be computed via callback)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo()._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)


class Histogram(_Metric):
    """Fixed-bucket distribution (cumulative counts + sum + count)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        super().__init__(name, help, labelnames, buckets=buckets)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)


class MetricsRegistry:
    """One deployment's metric namespace.

    Registration is idempotent: asking for an existing name returns the
    existing metric (so stage logics can declare their own metrics
    without coordinating), but re-registering with a different type,
    label set or bucket layout is an error — two writers disagreeing
    about a metric's shape is a bug, not a merge.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------ factories
    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, labelnames, buckets)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, Histogram) or \
                metric.labelnames != tuple(labelnames) or \
                metric._buckets != tuple(sorted(float(b) for b in buckets)):
            raise ValueError(f"metric {name!r} re-registered incompatibly")
        return metric

    def _register(self, cls: Type[M], name: str, help: str,
                  labelnames: Sequence[str]) -> M:
        metric = self._metrics.get(name)
        if metric is None:
            created = cls(name, help, labelnames)
            self._metrics[name] = created
            return created
        if type(metric) is not cls or metric.labelnames != tuple(labelnames):
            raise ValueError(f"metric {name!r} re-registered incompatibly")
        return cast(M, metric)

    # ------------------------------------------------------------ access
    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------ output
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The whole registry as one stable dict (sorted names, stable
        label keys) — the machine-readable side of ``/metrics``."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def expose(self) -> str:
        """Prometheus text exposition format (one scrape's worth)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].expose())
        return "\n".join(lines) + "\n"
