"""Transactional-outbox event streaming with pluggable sinks.

Watch delivery ends at connected clients; production coordination
services additionally stream every committed change to *external*
consumers — change-data-capture pipelines, audit logs, cross-system
replication.  Bolting that on out-of-band (read the store, diff, emit)
is lossy: an event emitted before the commit can describe a change that
never happened, one emitted after can be lost with the emitter.  The
transactional-outbox pattern closes the gap:

* **append** — the leader writes one *event record* per committed
  transaction (path, op type, txid, session, commit timestamp) to the
  ``SYSTEM_OUTBOX`` table **in the same conditional ``transact_update``
  as the commit-log append** (:meth:`SnapshotManager.append_log`): the
  state change, its log record and its outgoing event commit atomically,
  and the log-head condition that deduplicates redelivered leader
  batches deduplicates the outbox append for free;

* **publish** — a scheduled publisher function drains the outbox in
  global txid order up to the *publish floor* (``min`` over shards of
  the commit-log head watermarks — below the floor every committed txid
  provably has its record, so order is gapless; the same conservative
  floor the snapshot fold uses).  Per-path order follows from global
  txid order.  Each record is delivered to every configured sink with
  exponential-backoff retry; a sink that still fails after
  ``outbox_max_attempts`` gets the event *dead-lettered* (durable list +
  in-memory mirror) and the drain moves on.  The durable
  ``outbox:published`` watermark advances only **after** a record's
  sinks are settled, so a publisher crash re-delivers — at-least-once,
  with duplicates deduplicated downstream by ``(txid, path)``;

* **sinks** — pluggable behind a small registry
  (:func:`register_sink` / :func:`make_sink`): :class:`InProcSink`
  (in-memory list — tests, recipes), :class:`FileSink` (JSON-lines CDC
  feed), :class:`WebhookSink` (HTTP POST per record via an injectable
  transport; :class:`FakeHttp` is the test double).  Every sink keeps an
  in-memory ``delivered`` mirror so the chaos audit can assert
  no-lost / no-duplicated-beyond-redelivery without trusting the sink's
  own side effects.

Everything is gated on ``outbox_enabled`` (default off): a default
deployment creates no outbox table, deploys no publisher and keeps its
CI-gated write fingerprint bit-for-bit.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, ListAppend, Set, item_exists
from .layout import (
    OUTBOX_DEAD_LETTER_KEY,
    OUTBOX_PUBLISHED_KEY,
    SYSTEM_OUTBOX,
    SYSTEM_STATE,
    log_key,
)

__all__ = ["OutboxStage", "OutboxPublisherLogic", "Sink", "InProcSink",
           "FileSink", "WebhookSink", "FakeHttp", "register_sink",
           "make_sink", "SINK_SCHEMES"]


# --------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------

class Sink:
    """One event consumer.  Subclasses implement :meth:`_emit`; the base
    class keeps the in-memory ``delivered`` mirror every audit relies on
    (appended only after ``_emit`` succeeded, so the mirror never claims
    a delivery the sink rejected)."""

    kind = "sink"

    def __init__(self) -> None:
        #: Audit mirror: every successfully delivered event dict, in
        #: delivery order (duplicates included — at-least-once).
        self.delivered: List[Dict[str, Any]] = []
        #: Metrics/registry label; the stage uniquifies duplicates.
        self.label = self.kind

    def deliver(self, fctx, events: List[Dict[str, Any]]) -> Generator:
        """Deliver one record's events (raises on failure; the publisher
        owns retry and dead-letter policy)."""
        yield from self._emit(fctx, events)
        self.delivered.extend(dict(ev) for ev in events)
        return None

    def _emit(self, fctx, events: List[Dict[str, Any]]) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    # ------------------------------------------------------------ audit
    def delivered_txids(self) -> List[int]:
        return [ev["txid"] for ev in self.delivered]


# Constant after import: populated only by the @register_sink decorators
# below, identical in every sandbox, never mutated at runtime — so a
# cold_restart cannot observe divergent state through it.
SINK_SCHEMES: Dict[str, Callable[..., Sink]] = {}  # fklint: disable=FK004


def register_sink(scheme: str):
    """Register a sink class under a URI-ish scheme (``inproc``,
    ``file``, ``webhook``, ...); :func:`make_sink` resolves specs
    through this table, so deployments can plug in new sink kinds
    without touching the publisher."""
    def wrap(cls):
        cls.kind = scheme
        SINK_SCHEMES[scheme] = cls
        return cls
    return wrap


def make_sink(spec: Any) -> Sink:
    """Build a sink from a config spec: a ready :class:`Sink` instance,
    a ``(scheme, kwargs)`` pair, or a string ``"scheme"`` /
    ``"scheme:argument"`` (the argument is the file path or URL)."""
    if isinstance(spec, Sink):
        return spec
    if isinstance(spec, tuple) and len(spec) == 2:
        scheme, kwargs = spec
        try:
            factory = SINK_SCHEMES[scheme]
        except KeyError:
            raise ValueError(f"unknown sink scheme {scheme!r}") from None
        return factory(**dict(kwargs))
    if isinstance(spec, str):
        scheme, _, arg = spec.partition(":")
        try:
            factory = SINK_SCHEMES[scheme]
        except KeyError:
            raise ValueError(f"unknown sink scheme {scheme!r}") from None
        return factory(arg) if arg else factory()
    raise ValueError(f"cannot build a sink from {spec!r}")


@register_sink("inproc")
class InProcSink(Sink):
    """In-process consumer: events land on :attr:`delivered` (and an
    optional callback) — the zero-infrastructure sink tests and
    same-process consumers use."""

    def __init__(self, callback: Optional[Callable[[Dict[str, Any]], None]] = None) -> None:
        super().__init__()
        self.callback = callback

    def _emit(self, fctx, events: List[Dict[str, Any]]) -> Generator:
        if self.callback is not None:
            for ev in events:
                self.callback(dict(ev))
        return None
        yield  # pragma: no cover


@register_sink("file")
class FileSink(Sink):
    """JSON-lines change-data-capture feed: one line per event, appended
    per delivered record (the ``examples/change_data_capture.py`` sink)."""

    def __init__(self, path: str) -> None:
        super().__init__()
        if not path:
            raise ValueError("file sink needs a path ('file:<path>')")
        self.path = path

    def _emit(self, fctx, events: List[Dict[str, Any]]) -> Generator:
        # Serialization cost scales with the event batch (pure compute —
        # the file itself is outside the simulated cloud).
        yield fctx.compute(base_ms=0.1, payload_kb=0.1 * len(events))
        with open(self.path, "a", encoding="utf-8") as fh:
            for ev in events:
                fh.write(json.dumps(ev, sort_keys=True) + "\n")
        return None


@register_sink("webhook")
class WebhookSink(Sink):
    """HTTP POST per record.  The transport is injected
    (``transport(url, payload) -> status code``; raise or return >= 300
    to fail the delivery) — the simulation never opens sockets, and the
    :class:`FakeHttp` double drives the retry/dead-letter tests."""

    def __init__(self, url: str,
                 transport: Optional[Callable[[str, Dict[str, Any]], int]] = None) -> None:
        super().__init__()
        if not url:
            raise ValueError("webhook sink needs a URL ('webhook:<url>')")
        self.url = url
        self.transport = transport

    def _emit(self, fctx, events: List[Dict[str, Any]]) -> Generator:
        yield fctx.compute(base_ms=0.2, payload_kb=0.1 * len(events))
        if self.transport is None:
            raise RuntimeError(
                f"webhook sink {self.url}: no HTTP transport configured")
        status = self.transport(self.url, {"events": [dict(e) for e in events]})
        if status >= 300:
            raise RuntimeError(f"webhook sink {self.url}: HTTP {status}")
        return None


class FakeHttp:
    """Programmable fake HTTP transport for :class:`WebhookSink`:
    fails the first ``fail_times`` calls (with ``status``), then
    succeeds; records every request."""

    def __init__(self, fail_times: int = 0, status: int = 503) -> None:
        self.fail_times = fail_times
        self.status = status
        self.requests: List[Tuple[str, Dict[str, Any]]] = []

    def __call__(self, url: str, payload: Dict[str, Any]) -> int:
        self.requests.append((url, payload))
        if self.fail_times > 0:
            self.fail_times -= 1
            return self.status
        return 200


# --------------------------------------------------------------------------
# Publisher
# --------------------------------------------------------------------------

class OutboxPublisherLogic:
    """Behaviour of the ``fk-outbox`` publisher function.

    Stateless by design: progress (the published watermark), the input
    (outbox records) and the failure record (dead-letter list) are all
    durable, so a crashed drain resumes from storage — the property the
    ``outbox_*`` chaos points exercise.
    """

    def __init__(self, stage: "OutboxStage") -> None:
        self.stage = stage
        self.service = stage.service

    def cold_restart(self) -> None:
        """Chaos-harness hook (sandbox loss).  The publisher keeps no
        warm state — everything it needs is durable — so a cold restart
        only needs to exist, not to do anything."""

    # ------------------------------------------------------------ handler
    def handler(self, fctx, payload: Any) -> Generator:
        """One drain pass: publish eligible records in txid order, then
        garbage-collect records below the already-published watermark."""
        env = fctx.env
        stage = self.stage
        store = self.service.system_store
        metrics = stage.metrics
        fctx.crash_point("outbox_entry")
        metrics["drains"].inc()

        t0 = env.now
        mark_item = yield from store.get_item(
            fctx.ctx, SYSTEM_STATE, OUTBOX_PUBLISHED_KEY)
        mark = int((mark_item or {}).get("txid", 0))
        floor = yield from stage.publish_floor(fctx.ctx)
        records = yield from store.scan(fctx.ctx, SYSTEM_OUTBOX)
        fctx.record("outbox_scan", env.now - t0)

        eligible = sorted(
            (rec for rec in records.values() if mark < rec["txid"] <= floor),
            key=lambda rec: rec["txid"])
        metrics["backlog"].set(len(eligible))
        published = 0
        for rec in eligible[:self.service.config.outbox_batch]:
            fctx.crash_point("outbox_mid_drain")
            yield from self._publish_record(fctx, rec)
            fctx.crash_point("outbox_after_sink")
            # The watermark advances only after every sink settled this
            # record: a crash above re-delivers it (at-least-once).
            try:
                yield from store.update_item(
                    fctx.ctx, SYSTEM_STATE, OUTBOX_PUBLISHED_KEY,
                    updates=[Set("txid", rec["txid"])],
                    condition=Attr("txid").not_exists()
                    | (Attr("txid") < rec["txid"]),
                    payload_kb=0.032)
            except ConditionFailed:  # pragma: no cover - concurrent drain
                pass
            metrics["published_txid"].set(rec["txid"])
            metrics["lag"].observe(env.now - rec.get("ts", env.now))
            published += 1

        # Retention: records at or below the watermark *as of this pass's
        # start* were fully published by an earlier drain — drop them.
        # (Records published in this pass survive one period, keeping the
        # delete after the watermark write — crash-safe in either order.)
        for rec in sorted(records.values(), key=lambda r: r["txid"]):
            if rec["txid"] > mark:
                break
            try:
                yield from store.delete_item(
                    fctx.ctx, SYSTEM_OUTBOX, log_key(rec["txid"]),
                    condition=item_exists())
                metrics["compacted"].inc()
            except ConditionFailed:  # pragma: no cover - concurrent drain
                pass
        return {"published": published, "floor": floor,
                "backlog": len(eligible) - published}

    def _publish_record(self, fctx, rec: Dict[str, Any]) -> Generator:
        """Deliver one record to every sink: exponential-backoff retry,
        dead-letter on a sink that keeps failing."""
        env = fctx.env
        config = self.service.config
        metrics = self.stage.metrics
        events = [
            {"txid": rec["txid"], "path": path, "op": op,
             "session": rec.get("session"), "ts": rec.get("ts", 0.0),
             "shard": rec.get("shard", 0)}
            for path, op in rec["events"]
        ]
        t0 = env.now
        for label, sink in self.stage.sinks:
            delivered = False
            last_error: Optional[BaseException] = None
            for attempt in range(1, config.outbox_max_attempts + 1):
                try:
                    yield from sink.deliver(fctx, events)
                    delivered = True
                    break
                except Exception as exc:
                    last_error = exc
                    metrics["retries"].labels(sink=label).inc()
                    backoff = config.outbox_retry_base_ms * (2 ** (attempt - 1))
                    if attempt < config.outbox_max_attempts and backoff > 0:
                        yield env.timeout(backoff)
            if delivered:
                metrics["published"].labels(sink=label).inc(len(events))
            else:
                yield from self._dead_letter(fctx, label, rec, last_error)
        fctx.record("outbox_publish", env.now - t0)
        return None

    def _dead_letter(self, fctx, sink_label: str, rec: Dict[str, Any],
                     error: Optional[BaseException]) -> Generator:
        """A sink exhausted its retry budget: park the record durably so
        no event is silently dropped (the operator replays from here)."""
        entry = {"txid": rec["txid"], "sink": sink_label,
                 "events": [list(ev) for ev in rec["events"]],
                 "error": repr(error) if error else "unknown"}
        yield from self.service.system_store.update_item(
            fctx.ctx, SYSTEM_STATE, OUTBOX_DEAD_LETTER_KEY,
            updates=[ListAppend("items", [entry])],
            payload_kb=0.2)
        self.stage.dead_letters.append(entry)
        self.stage.metrics["dead_letters"].labels(sink=sink_label).inc()
        return None


# --------------------------------------------------------------------------
# Stage wiring
# --------------------------------------------------------------------------

class OutboxStage:
    """Deployment-side wiring of the outbox: table, sinks, publisher
    function (``service.outbox``; None unless ``outbox_enabled``)."""

    def __init__(self, service) -> None:
        self.service = service
        config = service.config
        service.system_store.create_table(SYSTEM_OUTBOX)

        # Sinks, with uniquified metric labels (two file sinks become
        # ``file`` and ``file-2``).
        self.sinks: List[Tuple[str, Sink]] = []
        seen: Dict[str, int] = {}
        for spec in config.outbox_sinks:
            sink = make_sink(spec)
            n = seen.get(sink.kind, 0) + 1
            seen[sink.kind] = n
            label = sink.kind if n == 1 else f"{sink.kind}-{n}"
            sink.label = label
            self.sinks.append((label, sink))

        #: In-memory mirror of the durable dead-letter list.
        self.dead_letters: List[Dict[str, Any]] = []

        registry = service.metrics
        self.metrics = {
            "appended": registry.counter(
                "fk_outbox_appended_total",
                "Event records appended to the outbox (with the commit)"),
            "drains": registry.counter(
                "fk_outbox_drains_total", "Publisher drain passes"),
            "published": registry.counter(
                "fk_outbox_events_published_total",
                "Events delivered per sink (duplicates counted)", ("sink",)),
            "retries": registry.counter(
                "fk_outbox_retries_total",
                "Failed sink delivery attempts that were retried", ("sink",)),
            "dead_letters": registry.counter(
                "fk_outbox_dead_letters_total",
                "Records dead-lettered per sink", ("sink",)),
            "compacted": registry.counter(
                "fk_outbox_records_compacted_total",
                "Published outbox records garbage-collected"),
            "published_txid": registry.gauge(
                "fk_outbox_published_txid",
                "Durable publish watermark (newest fully published txid)"),
            "backlog": registry.gauge(
                "fk_outbox_backlog",
                "Eligible-but-unpublished records at the last drain"),
            "lag": registry.histogram(
                "fk_outbox_publish_lag_ms",
                "Commit-to-sink publish lag per record (ms)"),
        }

        self.publisher = OutboxPublisherLogic(self)
        self.fn = service.cloud.deploy_function(
            "fk-outbox", self.publisher.handler,
            memory_mb=config.function_memory_mb, arch=config.arch,
            cpu_alloc=config.cpu_alloc, region=config.primary_region)

    # ------------------------------------------------------------ append
    def append_ops(self, env_now: float, txid: int, shard: int, session: str,
                   writes: List[Tuple[str, Optional[Dict[str, Any]], bool, str]]
                   ) -> List[tuple]:
        """The outbox leg of the leader's commit-log ``transact_update``:
        one event per *node* write (parent metadata updates are an
        implementation detail, not a user-visible change).  Returns []
        when nothing user-visible happened, so the log transaction stays
        unchanged for pure-metadata records."""
        events = [[path, op] for path, _image, is_parent, op in writes
                  if not is_parent]
        if not events:
            return []
        record = {"txid": txid, "shard": shard, "session": session,
                  "ts": env_now, "events": events}
        return [(SYSTEM_OUTBOX, log_key(txid),
                 [Set(k, v) for k, v in record.items()], None)]

    # ------------------------------------------------------------ floors
    def publish_floor(self, ctx) -> Generator[Any, Any, int]:
        """Newest txid safe to publish: ``min`` over shards of the
        commit-log heads.  Below it every committed txid has its outbox
        record (same storage transaction), so draining in txid order is
        gapless — which is what makes per-path order a corollary of
        global order, cross-shard multis included."""
        heads = yield from self.service.snapshots._log_heads(ctx)
        return self.service.snapshots._floor_from_heads(heads)

    # ------------------------------------------------------------ helpers
    def drain(self) -> Dict[str, Any]:
        """Synchronous manual drain (tests, examples): one publisher
        invocation, run to completion."""
        done = self.service.cloud.runtime.invoke_direct(self.fn, None)
        return self.service.cloud.env.run(until=done)

    def sink(self, label_or_index: Any = 0) -> Sink:
        """Look up a configured sink by metric label or position."""
        if isinstance(label_or_index, int):
            return self.sinks[label_or_index][1]
        for label, sink in self.sinks:
            if label == label_or_index:
                return sink
        raise KeyError(label_or_index)

    def stats(self) -> Dict[str, float]:
        return {
            "appended": self.metrics["appended"].value,
            "drains": self.metrics["drains"].value,
            "published": sum(c.value for _lv, c in
                             self.metrics["published"].items()),
            "retries": sum(c.value for _lv, c in
                           self.metrics["retries"].items()),
            "dead_letters": float(len(self.dead_letters)),
            "published_txid": self.metrics["published_txid"].value,
        }
