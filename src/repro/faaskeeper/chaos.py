"""Seeded crash-restart chaos harness for the FaaSKeeper pipelines.

The simulation's queue/function topology makes every stage boundary a
natural crash point: the leader between commit verification and
replication, a distributor region between its watch stage and its
visibility watermark, the watch fan-out between per-session deliveries.
:class:`ChaosMonkey` arms those points with *seeded, budgeted* random
crashes and models the sandbox loss on every failure, so a test can
assert exactly-once end effects — no lost acknowledged write, no
duplicated watch callback — under hundreds of distinct crash schedules,
each reproducible from its integer seed.

Design constraints the harness respects:

* **determinism** — all randomness flows from one ``random.Random(seed)``;
  the simulation itself is deterministic, so (seed, config) fully
  determines the crash schedule and a CI failure replays locally.
* **liveness** — every (function, point) pair has a finite crash budget.
  Leader and distributor queues redeliver forever, so any finite budget
  converges; the watch fan-out is a free function whose invoker retries
  ``free_fn_retries`` times, so its *total* budget is capped by that
  retry count (the budget is shared across the watch points).
* **sandbox loss** — a crashed invocation's warm state is gone: the
  harness hooks :attr:`DeployedFunction.on_failure` and calls the stage
  logic's ``cold_restart()``, so redeliveries re-hydrate epoch mirrors
  and landed-txid memories from storage instead of inheriting them.

:func:`wipe_user_region` destroys one region's user-store replica in
place (the disaster :meth:`SnapshotManager.recover_region` exists for),
and :func:`verify_exactly_once` audits a quiesced deployment against the
workload's expectations.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .layout import (
    LOG_HEAD_KEY,
    OUTBOX_DEAD_LETTER_KEY,
    OUTBOX_PUBLISHED_KEY,
    SYSTEM_NODES,
    SYSTEM_SESSIONS,
    SYSTEM_STATE,
    epoch_key,
)
from .service import FaaSKeeperService

__all__ = ["ChaosMonkey", "CRASH_POINTS", "wipe_user_region",
           "wipe_system_tables", "region_user_image", "verify_exactly_once",
           "verify_outbox_delivery", "arm_storage_faults"]

#: Stage -> crash points the harness knows how to arm.
CRASH_POINTS: Dict[str, Tuple[str, ...]] = {
    "leader": ("leader_entry", "leader_mid_batch", "leader_after_log"),
    "distributor": ("dist_entry", "dist_after_watch_stage",
                    "dist_before_visible"),
    "watch": ("watch_entry", "watch_mid_fanout"),
    "outbox": ("outbox_entry", "outbox_mid_drain", "outbox_after_sink"),
}


class ChaosMonkey:
    """Arm seeded, budgeted crashes across a deployment's stages.

    ``stages`` selects which pipelines to attack (default: every stage
    the deployment actually runs); ``probability`` is the per-pass crash
    chance at an armed point while its budget lasts.
    """

    def __init__(self, service: FaaSKeeperService, seed: int,
                 stages: Optional[Iterable[str]] = None,
                 probability: float = 0.25,
                 budget_per_point: int = 2,
                 storage_fault_rate: float = 0.0) -> None:
        self.service = service
        self.rng = random.Random(seed)
        self.probability = probability
        #: (function name, point) -> crashes this pair may still inject.
        self._budget: Dict[Tuple[str, str], int] = {}
        #: function name -> stage logic with a ``cold_restart()`` method.
        self._logic_by_fn: Dict[str, Any] = {}
        #: Crash log: (function name, point, invocation id), in order.
        self.crashes: List[Tuple[str, str, int]] = []
        self.restarts = 0

        wanted = set(stages) if stages is not None else set(CRASH_POINTS)
        unknown = wanted - set(CRASH_POINTS)
        if unknown:
            raise ValueError(f"unknown chaos stages {sorted(unknown)}")

        if "leader" in wanted:
            for fn, logic in zip(service.leader_fns, service.leader_logics):
                self._arm(fn, logic, CRASH_POINTS["leader"], budget_per_point)
        if "distributor" in wanted and service.distribution is not None:
            stage = service.distribution
            for region, fn in stage.fns.items():
                self._arm(fn, stage.logics[region],
                          CRASH_POINTS["distributor"], budget_per_point)
        if "outbox" in wanted and service.outbox is not None:
            # Liveness: the scheduled publisher keeps firing (and retries a
            # failed invocation once per period), so any finite budget
            # converges — once it is spent, the next drain runs clean and
            # the durable watermark catches up.
            self._arm(service.outbox.fn, service.outbox.publisher,
                      CRASH_POINTS["outbox"], budget_per_point)
        if "watch" in wanted and service.config.free_fn_retries > 0:
            # Liveness: at most free_fn_retries crashes across ALL watch
            # points of one function, so the final retry always runs clean.
            total = service.config.free_fn_retries
            per_point = max(1, total // len(CRASH_POINTS["watch"]))
            shared = {"left": total}
            self._arm(service.watch_fn, None, CRASH_POINTS["watch"],
                      per_point, shared_cap=shared)
        #: Armed storage-fault injectors (empty unless storage_fault_rate>0):
        #: the storage-fault axis of the chaos matrix, orthogonal to the
        #: crash stages above.  Scheduling determinism comes from the
        #: simulation's named RNG streams, so (sim seed, config, rate)
        #: fully determines the fault schedule.
        self.storage_injectors = (
            arm_storage_faults(service, rate=storage_fault_rate)
            if storage_fault_rate > 0 else [])

    # ------------------------------------------------------------ wiring
    def _arm(self, fn, logic, points: Tuple[str, ...], budget: int,
             shared_cap: Optional[Dict[str, int]] = None) -> None:
        name = fn.spec.name
        if logic is not None:
            self._logic_by_fn[name] = logic
        fn.on_failure = self._on_failure
        for point in points:
            self._budget[(name, point)] = budget
            fn.fault_plan[point] = self._predicate(name, point, shared_cap)

    def _predicate(self, name: str, point: str,
                   shared_cap: Optional[Dict[str, int]]):
        key = (name, point)

        def maybe_crash(invocation_id: int) -> bool:
            if self._budget[key] <= 0:
                return False
            if shared_cap is not None and shared_cap["left"] <= 0:
                return False
            if self.rng.random() >= self.probability:
                return False
            self._budget[key] -= 1
            if shared_cap is not None:
                shared_cap["left"] -= 1
            self.crashes.append((name, point, invocation_id))
            return True

        return maybe_crash

    def _on_failure(self, fn, exc: BaseException) -> None:
        self.restarts += 1
        logic = self._logic_by_fn.get(fn.spec.name)
        if logic is not None:
            logic.cold_restart()


# --------------------------------------------------------------------------
# Region destruction + raw inspection
# --------------------------------------------------------------------------

def arm_storage_faults(service: FaaSKeeperService,
                       rate: float) -> List[Any]:
    """Arm a seeded transient-fault schedule on every storage service the
    deployment owns (delegates to the backend registry's ``fault_points``
    plus the system store).  Returns the armed injectors."""
    return service.arm_storage_faults(rate=rate)


def wipe_user_region(service: FaaSKeeperService, region: str) -> None:
    """Destroy one region's user-store replica in place (zero latency):
    the replica-loss disaster cold recovery rebuilds from.  System
    storage — the durable side of the design — is untouched.  Dispatches
    through the registry backend's own ``wipe_region``, so every
    registered backend — ``mem://`` included — is chaos-able."""
    service.user_store.wipe_region(region)


def wipe_system_tables(service: FaaSKeeperService) -> None:
    """Destroy the coordination tables in place — the node index, watch
    instances and session records — the disaster
    :meth:`SnapshotManager.recover_system` rebuilds from.  The durable
    substrate (commit log, snapshot table, state watermarks) survives,
    exactly as a multi-region deployment losing its system region's
    tables but not its replicated log would."""
    store = service.system_store
    tables = [SYSTEM_NODES, *service.watch_registry.tables, SYSTEM_SESSIONS]
    for table in tables:
        store.table(table)._items.clear()


def region_user_image(service: FaaSKeeperService, region: str,
                      path: str) -> Optional[Dict[str, Any]]:
    """Zero-latency peek at one region's user image (test verification —
    the billed read path is :meth:`UserStore.read_node`).  Dispatches
    through the registry backend's own ``peek``."""
    return service.user_store.peek(region, path)


# --------------------------------------------------------------------------
# Exactly-once audit
# --------------------------------------------------------------------------

def verify_exactly_once(service: FaaSKeeperService,
                        expected: Dict[str, Optional[bytes]],
                        acked_txids: Optional[Iterable[int]] = None
                        ) -> List[str]:
    """Audit a *quiesced* deployment for exactly-once end effects.

    ``expected`` maps each workload path to the data of its newest
    acknowledged write (None = acknowledged delete); ``acked_txids`` are
    the transaction ids of acknowledged writes.  Returns a list of
    violation descriptions (empty = consistent):

    * every system node's pending-transaction list has drained and no
      lock is left behind;
    * every region's user replica holds exactly the acknowledged data,
      with version/txid metadata matching the system store (no lost and
      no resurrected-duplicate write);
    * every acknowledged txid is visible in every region's watermark
      (when the distributor maintains one);
    * every region's epoch counter has drained (no watch notification
      forever in flight).
    """
    violations: List[str] = []
    nodes = service.system_store.table(SYSTEM_NODES)

    for path in sorted(expected):
        final = expected[path]
        item = nodes.raw(path) or {}
        if item.get("transactions"):
            violations.append(
                f"{path}: pending transactions not drained: "
                f"{item['transactions']}")
        if final is None:
            if item.get("exists"):
                violations.append(f"{path}: acked delete but system node alive")
        elif not item.get("exists"):
            violations.append(f"{path}: acked write but system node missing")
        for region in service.config.regions:
            image = region_user_image(service, region, path)
            if final is None:
                if image is not None:
                    violations.append(
                        f"{path}@{region}: acked delete but replica present")
                continue
            if image is None:
                violations.append(f"{path}@{region}: acked write lost")
                continue
            if image.get("data", b"") != final:
                violations.append(
                    f"{path}@{region}: data mismatch "
                    f"(got {image.get('data', b'')!r}, want {final!r})")
            if item.get("exists") and \
                    image.get("version") != item.get("version"):
                violations.append(
                    f"{path}@{region}: version {image.get('version')} != "
                    f"system {item.get('version')}")
            if item.get("exists") and \
                    image.get("modified_tx") != item.get("modified_tx"):
                violations.append(
                    f"{path}@{region}: modified_tx {image.get('modified_tx')}"
                    f" != system {item.get('modified_tx')}")

    board = service.visibility_board
    if board is not None and acked_txids is not None:
        for txid in acked_txids:
            for region in service.config.regions:
                if not board.visible(region, txid):
                    violations.append(
                        f"txid {txid} acked but not visible in {region}")

    state = service.system_store.table(SYSTEM_STATE)
    for region in service.config.regions:
        epoch_item = state.raw(epoch_key(region)) or {}
        if epoch_item.get("items"):
            violations.append(
                f"epoch counter {region} not drained: {epoch_item['items']}")
    violations.extend(verify_outbox_delivery(service, acked_txids))
    return violations


def verify_outbox_delivery(service: FaaSKeeperService,
                           acked_txids: Optional[Iterable[int]] = None
                           ) -> List[str]:
    """Audit the outbox's delivery guarantees on a quiesced deployment
    (no-op without the outbox).  At-least-once with redelivery means a
    sink may see duplicates — but only *faithful* ones, and order must
    survive them:

    * deduplicated by ``(txid, path)``, every path's event sequence at
      every sink is strictly increasing in txid (per-path publish order);
    * two deliveries of the same ``(txid, path)`` never disagree on the
      event payload (a redelivery replays, never rewrites);
    * every acknowledged transaction **at or below the publish floor**
      (``min`` over shards of the durable log heads — above it records
      are not yet eligible, the documented idle-shard stall) is accounted
      for at every sink — delivered, or parked in the dead-letter list
      (no lost events).
    """
    violations: List[str] = []
    outbox = service.outbox
    if outbox is None:
        return violations
    state = service.system_store.table(SYSTEM_STATE)
    mark = int((state.raw(OUTBOX_PUBLISHED_KEY) or {}).get("txid", 0))
    heads = state.raw(LOG_HEAD_KEY) or {}
    floor = min(int(heads.get(f"s{i}", 0))
                for i in range(service.config.leader_shards))
    dead_by_sink: Dict[str, set] = {}
    for entry in (state.raw(OUTBOX_DEAD_LETTER_KEY) or {}).get("items", []):
        dead_by_sink.setdefault(entry["sink"], set()).add(entry["txid"])

    for label, sink in outbox.sinks:
        seen: Dict[Tuple[int, str], Tuple[Any, ...]] = {}
        newest_per_path: Dict[str, int] = {}
        for ev in sink.delivered:
            key = (ev["txid"], ev["path"])
            payload = (ev["op"], ev.get("session"))
            if key in seen:
                if seen[key] != payload:
                    violations.append(
                        f"outbox[{label}]: redelivery of txid {key[0]} on "
                        f"{key[1]} changed payload {seen[key]} -> {payload}")
                continue  # faithful duplicate: legal under at-least-once
            seen[key] = payload
            if newest_per_path.get(ev["path"], 0) >= ev["txid"]:
                violations.append(
                    f"outbox[{label}]: {ev['path']} delivered txid "
                    f"{ev['txid']} after {newest_per_path[ev['path']]}")
            else:
                newest_per_path[ev["path"]] = ev["txid"]
        accounted = {txid for txid, _path in seen} | dead_by_sink.get(label,
                                                                      set())
        if acked_txids is not None:
            for txid in sorted(set(acked_txids)):
                if txid <= floor and txid not in accounted:
                    violations.append(
                        f"outbox[{label}]: acked txid {txid} neither "
                        f"delivered nor dead-lettered (watermark {mark}, "
                        f"floor {floor})")
    return violations
