"""Shared counter: version-conditioned compare-and-swap over one znode.

The value lives as a decimal string in the counter node's data; every
change is a read followed by a ``set_data`` conditioned on the read's
version (Z1 makes the conditional write the atomic arbiter), retried on
:class:`BadVersionError` through the session's retry helper.  Lost
updates are impossible; contention costs retries, not correctness.
"""

from __future__ import annotations

from typing import Generator

from ..client import SessionRetry
from ..exceptions import (
    BadVersionError,
    NodeExistsError,
    NoNodeError,
    RetryFailedError,
)
from ..model import parent_path
from .base import Recipe

__all__ = ["Counter"]


class Counter(Recipe):
    """Kazoo-style counter::

        counter = recipes.Counter(client, "/stats/jobs")
        counter += 1
        counter -= 2
        print(counter.value)
    """

    def __init__(self, client, path: str, default: int = 0) -> None:
        super().__init__(client, path)
        self.default = int(default)
        #: Value written by this session's last successful change.
        self.last_set = self.default
        # BadVersionError: a lost compare-and-swap race.  NoNodeError: a
        # sibling session's winning create is committed (our own create was
        # rejected with node_exists) but not yet replicated into this
        # region's user store — retrying the read resolves both.
        self._retry = SessionRetry(
            client, max_tries=30, delay_ms=10.0, max_delay_ms=500.0,
            retry_exceptions=(BadVersionError, NoNodeError))

    @staticmethod
    def _decode(data: bytes, default: int) -> int:
        return int(data) if data else default

    # ------------------------------------------------------------ coroutine
    def co_ensure_node(self) -> Generator:
        if self._ensured:
            return None
        parent = parent_path(self.path)
        if parent != "/":
            yield from self.client.co_ensure_path(parent)
        stat = yield self.client.exists_async(self.path).event
        if stat is None:
            try:
                yield self.client.create_async(
                    self.path, str(self.default).encode()).event
            except NodeExistsError:
                pass
        self._ensured = True
        return None

    def co_get(self, max_tries: int = 20) -> Generator:
        yield from self.co_ensure_node()
        for attempt in range(max_tries):
            try:
                data, _stat = yield self.client.get_data_async(self.path).event
            except NoNodeError:
                # A sibling's winning create has committed but not yet
                # replicated into this region: retry the read.
                yield self.env.timeout(25.0 * (attempt + 1))
                continue
            return self._decode(data, self.default)
        raise RetryFailedError(
            f"counter {self.path} never became readable")

    def co_add(self, delta: int, max_tries: int = 50) -> Generator:
        """Atomically add ``delta``; returns the new value."""
        yield from self.co_ensure_node()
        for attempt in range(max_tries):
            try:
                data, stat = yield self.client.get_data_async(self.path).event
                new = self._decode(data, self.default) + delta
                yield self.client.set_data_async(
                    self.path, str(new).encode(), version=stat.version).event
            except (BadVersionError, NoNodeError):
                # Lost the compare-and-swap race (or the winning create is
                # not yet replicated): linear deterministic backoff spreads
                # contenders without a shared RNG draw.
                yield self.env.timeout(5.0 * (attempt + 1))
                continue
            self.last_set = new
            return new
        raise RetryFailedError(
            f"counter {self.path}: {max_tries} compare-and-swap attempts "
            f"all lost the race")

    # ------------------------------------------------------------ sync
    def _ensure_node(self) -> None:
        self._run(self.co_ensure_node())

    @property
    def value(self) -> int:
        self._ensure_node()

        def read():
            data, _stat = self.client.get_data(self.path)
            return self._decode(data, self.default)

        return self._retry(read)

    def _change(self, delta: int) -> int:
        self._ensure_node()

        def attempt():
            data, stat = self.client.get_data(self.path)
            new = self._decode(data, self.default) + delta
            self.client.set_data(self.path, str(new).encode(),
                                 version=stat.version)
            return new

        self.last_set = self._retry(attempt)
        return self.last_set

    def __iadd__(self, delta: int) -> "Counter":
        self._change(int(delta))
        return self

    def __isub__(self, delta: int) -> "Counter":
        self._change(-int(delta))
        return self
