"""Shared machinery of the coordination recipes.

Every recipe is written against the *public* client surface only —
ephemeral and sequence nodes, watches, ``multi()``, ``ensure_path`` and the
session retry — never against service or storage internals, so a recipe is
exactly the code a FaaSKeeper user would write (and exercises the full
write pipeline, cache and distributor stages underneath).

Recipes come in two forms:

* **synchronous** methods (``acquire()``, ``wait()``, ``get()``) drive the
  virtual clock until the operation completes — the natural form for
  example scripts and linear flows;
* **coroutine** methods (``co_acquire()``, ``co_wait()``, ``co_get()``)
  are generators to be spawned as simulation processes
  (``cloud.env.process(lock.co_acquire())``) — the form the contention
  tests and benchmarks use to run many contenders concurrently, the
  simulation's analogue of one thread per client.

Both forms share the same protocol code: the sync facade just runs the
coroutine on the event loop.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ...sim.kernel import AnyOf
from ..exceptions import NoNodeError, SessionClosedError
from ..model import validate_path

__all__ = ["Recipe", "sequence_sorted"]


def sequence_sorted(children: List[str], prefix: str = "") -> List[str]:
    """Child names filtered by ``prefix`` and ordered by their 10-digit
    sequence suffix (creation order — the queue discipline of every
    sequence-node recipe)."""
    return sorted((c for c in children if c.startswith(prefix)),
                  key=lambda c: c[-10:])


class Recipe:
    """Base class: a client session plus the znode path the recipe owns."""

    def __init__(self, client, path: str) -> None:
        validate_path(path)
        if path == "/":
            raise ValueError("recipes need a dedicated path, not '/'")
        self.client = client
        self.path = path
        self._ensured = False

    @property
    def env(self):
        return self.client.env

    # ------------------------------------------------------------ plumbing
    def _run(self, gen: Generator):
        """Synchronous facade: run a recipe coroutine to completion on the
        event loop and hand back its result (or raise its error)."""
        env = self.env
        return env.run(until=env.process(
            gen, name=f"recipe:{type(self).__name__}:{self.path}"))

    def _event(self):
        """A fresh defused kernel event (watch-callback rendezvous)."""
        event = self.env.event()
        event.defused()
        return event

    def _wake_event(self):
        """Event + watch callback pair: the callback fires the event once
        (subsequent deliveries of a re-armed loop are absorbed)."""
        event = self._event()

        def on_change(_watched_event, _ev=event):
            if not _ev.triggered:
                _ev.succeed(None)

        return event, on_change

    def co_ensure_path(self) -> Generator:
        """Create the recipe's root path once (idempotent)."""
        if not self._ensured:
            yield from self.client.co_ensure_path(self.path)
            self._ensured = True
        return None

    def _co_delete_quiet(self, path: str) -> Generator:
        """Delete ``path``, absorbing already-gone and session-dead errors
        (an evicted session's ephemeral nodes are cleaned up server-side)."""
        try:
            yield self.client.delete_async(path).event
        except (NoNodeError, SessionClosedError):
            pass
        return None

    def _co_wait(self, event, deadline: Optional[float]) -> Generator:
        """Wait for ``event``; False when ``deadline`` (absolute virtual
        time, None = forever) passes first."""
        if event.triggered:
            return True
        if deadline is None:
            yield event
            return True
        remaining = deadline - self.env.now
        if remaining <= 0:
            return False
        yield AnyOf(self.env, [event, self.env.timeout(remaining)])
        return event.triggered
