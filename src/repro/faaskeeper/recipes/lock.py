"""Distributed lock and semaphore (Hunt et al., ATC'10, Section 2.4).

Both are the classic herd-free ZooKeeper queue discipline: every
contender creates an ephemeral **sequence** node under the recipe path;
the queue position decides.  A :class:`Lock` grants the single head of
the queue; a :class:`Semaphore` grants the first ``max_leases`` positions.
A waiter at position ``i`` watches only the node at position
``i - max_slots`` — the exact contender whose departure can admit it — so
a release (or a holder's session eviction) wakes at most one waiter — no
thundering herd — and grants strictly in FIFO request order, which is
where the fairness edge over the paper's timed (try-)lock comes from
(``benchmarks/bench_recipe_lock.py``).

Correctness leans on the service guarantees: Z1 makes the sequence-node
create an atomic enqueue, the parent's child list is serialized by the
follower's node lock (a later contender always observes every earlier
one), and the watch-before-read protocol (register inside ``exists``
ahead of the storage fetch) means a blocker observed alive is guaranteed
to fire the armed watch when it goes — a wakeup can never be lost between
the look and the wait.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..exceptions import NoNodeError, SessionClosedError
from .base import Recipe, sequence_sorted

__all__ = ["Lock", "Semaphore"]


class _SequenceQueueWaiter(Recipe):
    """Shared queue discipline: grant when fewer than ``max_slots``
    contenders are ahead, else watch the one whose departure can admit us.
    """

    #: Contender node name prefix (a 10-digit sequence suffix is appended).
    prefix = "contender-"
    #: Number of concurrent holders the queue admits.
    max_slots = 1

    def __init__(self, client, path: str, identifier: str = "") -> None:
        super().__init__(client, path)
        self.identifier = identifier or client.session_id
        self.node: Optional[str] = None      # our contender node (full path)
        self.is_acquired = False
        #: Blocker-watch deliveries received while actually waiting (herd
        #: accounting: a herd-free queue sees at most one per release).
        self.wake_ups = 0
        self._current_wait = None

    # ------------------------------------------------------------ coroutine
    def co_acquire(self, blocking: bool = True,
                   timeout_ms: Optional[float] = None) -> Generator:
        """Acquire a slot; returns True when held.  Non-blocking or
        timed-out attempts withdraw the contender node and return False
        (kazoo semantics)."""
        if self.is_acquired:
            return True
        yield from self.co_ensure_path()
        if self.node is None:
            self.node = yield self.client.create_async(
                f"{self.path}/{self.prefix}", self.identifier.encode(),
                ephemeral=True, sequence=True).event
        deadline = None if timeout_ms is None else self.env.now + timeout_ms
        mine = self.node.rsplit("/", 1)[1]
        try:
            while True:
                children = yield self.client.get_children_async(
                    self.path).event
                queue = sequence_sorted(children, self.prefix)
                if mine not in queue:
                    # Our ephemeral vanished underneath us: the session was
                    # evicted (or an outsider deleted the node).
                    self.node = None
                    raise SessionClosedError(
                        f"contender {mine} vanished from {self.path}")
                index = queue.index(mine)
                if index < self.max_slots:
                    self.is_acquired = True
                    return True
                blocker = f"{self.path}/{queue[index - self.max_slots]}"
                fired, on_change = self._wake_event()
                self._current_wait = fired

                def counted(event, _cb=on_change, _fired=fired):
                    # Herd accounting counts only the wake of the wait
                    # still in progress; a stale watch left behind by an
                    # abandoned or superseded attempt fires silently.
                    if self._current_wait is _fired:
                        self.wake_ups += 1
                    _cb(event)

                # Register-before-read: if the blocker is observed alive,
                # its departure is guaranteed to fire this watch.  Should
                # it vanish between the listing and this stat, the armed
                # instance can linger until the blocker's (never-recurring)
                # sequence path would change — a bounded storage leak the
                # GC reclaims with the session.
                stat = yield self.client.exists_async(blocker,
                                                      watch=counted).event
                if stat is None:
                    continue  # blocker vanished while we looked: re-check
                if not blocking:
                    yield from self._co_abandon()
                    return False
                if not (yield from self._co_wait(fired, deadline)):
                    yield from self._co_abandon()
                    return False
        finally:
            self._current_wait = None

    def co_release(self) -> Generator:
        """Release the slot (or withdraw a pending contender node)."""
        if self.node is None:
            return False
        yield from self._co_delete_quiet(self.node)
        self.node = None
        self.is_acquired = False
        return True

    def _co_abandon(self) -> Generator:
        """Withdraw from the queue so successors are not blocked forever."""
        if self.node is not None:
            yield from self._co_delete_quiet(self.node)
            self.node = None
        return None

    # ------------------------------------------------------------ sync
    def acquire(self, blocking: bool = True,
                timeout_ms: Optional[float] = None) -> bool:
        return self._run(self.co_acquire(blocking, timeout_ms))

    def release(self) -> bool:
        return self._run(self.co_release())

    def _queued_identifiers(self) -> List[str]:
        """Identifiers currently queued, in grant order."""
        found = []
        for name in sequence_sorted(self.client.get_children(self.path),
                                    self.prefix):
            try:
                data, _stat = self.client.get_data(f"{self.path}/{name}")
                found.append(data.decode())
            except NoNodeError:
                pass  # released while we listed
        return found

    def __enter__(self) -> "_SequenceQueueWaiter":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Lock(_SequenceQueueWaiter):
    """Mutual-exclusion lock, kazoo-style::

        lock = recipes.Lock(client, "/locks/app", identifier="worker-1")
        with lock:          # or lock.acquire() / lock.release()
            ...critical section...

    ``co_acquire``/``co_release`` are the coroutine forms for concurrent
    simulation-process contenders.
    """

    prefix = "lock-"
    max_slots = 1

    def contenders(self) -> List[str]:
        """Identifiers currently queued, in grant order (holder first)."""
        return self._queued_identifiers()


class Semaphore(_SequenceQueueWaiter):
    """Counting semaphore: at most ``max_leases`` concurrent holders.

    The generalized queue discipline of :class:`Lock` — the contender at
    position ``i`` holds a lease once ``i < max_leases``, watching the
    contender at ``i - max_leases`` until then, so each release wakes at
    most one waiter here too.
    """

    prefix = "lease-"

    def __init__(self, client, path: str, max_leases: int = 1,
                 identifier: str = "") -> None:
        if max_leases < 1:
            raise ValueError(f"max_leases must be >= 1, got {max_leases}")
        super().__init__(client, path, identifier)
        self.max_leases = max_leases
        self.max_slots = max_leases

    def lease_holders(self) -> List[str]:
        """Identifiers currently holding a lease."""
        return self._queued_identifiers()[:self.max_leases]
