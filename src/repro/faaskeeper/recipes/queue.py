"""Distributed FIFO queue (Hunt et al., ATC'10, Section 2.4).

``put`` appends a sequence node under the queue path (Z1's total write
order is the queue order); ``get`` claims the smallest-sequence entry by
deleting it — the conditional delete is the atomic claim, so exactly one
consumer wins each entry and losers simply move to the next.  A blocking
``get`` arms a children watch before concluding the queue is empty, so a
``put`` racing the look is never missed.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..exceptions import NoNodeError
from .base import Recipe, sequence_sorted

__all__ = ["Queue"]


class Queue(Recipe):
    """Kazoo-style queue::

        queue = recipes.Queue(client, "/queues/tasks")
        queue.put(b"job 1")
        data = queue.get()            # b"job 1" (None when empty)
        data = queue.get(block=True)  # wait for an entry
    """

    prefix = "entry-"

    # ------------------------------------------------------------ coroutine
    def co_put(self, value: bytes) -> Generator:
        """Append an entry; returns its node path."""
        yield from self.co_ensure_path()
        path = yield self.client.create_async(
            f"{self.path}/{self.prefix}", bytes(value), sequence=True).event
        return path

    def co_get(self, block: bool = False,
               timeout_ms: Optional[float] = None) -> Generator:
        """Claim the oldest entry; None when empty (after the timeout, if
        ``block``)."""
        yield from self.co_ensure_path()
        deadline = None if timeout_ms is None else self.env.now + timeout_ms
        while True:
            fired, on_change = self._wake_event()
            # The children watch is armed before the listing (register-
            # before-read), so an entry created after an empty look fires it.
            children = yield self.client.get_children_async(
                self.path, watch=on_change if block else None).event
            for name in sequence_sorted(children, self.prefix):
                entry = f"{self.path}/{name}"
                try:
                    data, _stat = yield self.client.get_data_async(entry).event
                    # The delete is the claim: one winner per entry.
                    yield self.client.delete_async(entry).event
                except NoNodeError:
                    continue  # another consumer won this entry
                return data
            if not block:
                return None
            if not (yield from self._co_wait(fired, deadline)):
                return None

    def co_qsize(self) -> Generator:
        yield from self.co_ensure_path()
        children = yield self.client.get_children_async(self.path).event
        return len(sequence_sorted(children, self.prefix))

    # ------------------------------------------------------------ sync
    def put(self, value: bytes) -> str:
        return self._run(self.co_put(value))

    def get(self, block: bool = False,
            timeout_ms: Optional[float] = None) -> Optional[bytes]:
        return self._run(self.co_get(block, timeout_ms))

    def qsize(self) -> int:
        return self._run(self.co_qsize())

    def is_empty(self) -> bool:
        return self.qsize() == 0

    def __len__(self) -> int:
        return self.qsize()
