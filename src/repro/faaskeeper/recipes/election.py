"""Leader election (Hunt et al., ATC'10, Section 2.4) — the herd-free
successor chain.

Each candidate enlists with an ephemeral sequence node; the smallest
sequence number leads.  Every other candidate watches only its immediate
predecessor, so a leader's death (session eviction deletes its ephemeral
candidate node) wakes exactly one successor — no thundering herd — and
leadership passes in enlistment order.

The recipe is callback-driven (``volunteer(on_leadership)``): succession
rides watch deliveries, which is what lets a crashed leader be replaced
without any surviving candidate polling.  ``lead()`` is the blocking
convenience built on top.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..exceptions import NoNodeError, SessionClosedError
from .base import Recipe, sequence_sorted

__all__ = ["Election"]


class Election(Recipe):
    """Leader election::

        election = recipes.Election(client, "/election", identifier="node-1")
        if election.volunteer(on_leadership=become_leader):
            ...  # leading right away
        # otherwise become_leader() fires when every earlier candidate is gone
    """

    prefix = "candidate-"

    def __init__(self, client, path: str, identifier: str = "") -> None:
        super().__init__(client, path)
        self.identifier = identifier or client.session_id
        self.node: Optional[str] = None      # our candidate node (full path)
        self.is_leader = False
        #: Predecessor we are currently watching (None while leading).
        self.watching: Optional[str] = None
        #: Predecessor-watch deliveries (herd accounting: one succession
        #: wakes exactly one candidate).
        self.wake_ups = 0
        self._callback: Optional[Callable[[], None]] = None
        self._resigned = False

    @property
    def node_name(self) -> Optional[str]:
        return None if self.node is None else self.node.rsplit("/", 1)[1]

    # ------------------------------------------------------------ protocol
    def volunteer(self, on_leadership: Optional[Callable[[], None]] = None
                  ) -> bool:
        """Enlist as a candidate; returns True when leading immediately.
        ``on_leadership`` fires (once) when leadership is later inherited.
        """
        self._resigned = False
        self._callback = on_leadership
        self.client.ensure_path(self.path)
        if self.node is None:
            self.node = self.client.create(
                f"{self.path}/{self.prefix}", self.identifier.encode(),
                ephemeral=True, sequence=True)
        return self._evaluate()

    def _evaluate(self) -> bool:
        """(Re)compute leadership; arm the predecessor watch otherwise."""
        if self._resigned or self.client.closed or self.node is None:
            return False
        queue = sequence_sorted(self.client.get_children(self.path),
                                self.prefix)
        mine = self.node_name
        if mine not in queue:
            # Our ephemeral candidate vanished: the session was evicted.
            self.node = None
            return False
        index = queue.index(mine)
        if index == 0:
            self.is_leader = True
            self.watching = None
            if self._callback is not None:
                callback, self._callback = self._callback, None
                callback()
            return True
        self.watching = f"{self.path}/{queue[index - 1]}"
        stat = self.client.exists(self.watching, watch=self._on_predecessor)
        if stat is None:
            # Predecessor vanished between the listing and the stat:
            # re-evaluate — we may have inherited the lead.
            return self._evaluate()
        return False

    def _on_predecessor(self, _event) -> None:
        self.wake_ups += 1
        if self._resigned or self.is_leader or self.client.closed:
            return
        try:
            self._evaluate()
        except SessionClosedError:
            pass  # evicted between delivery and re-evaluation

    def resign(self) -> None:
        """Step down / withdraw the candidacy."""
        self._resigned = True
        self.is_leader = False
        self.watching = None
        self._callback = None
        if self.node is not None:
            try:
                self.client.delete(self.node)
            except (NoNodeError, SessionClosedError):
                pass
            self.node = None

    def lead(self, timeout_ms: Optional[float] = None) -> bool:
        """Block until this candidate leads (True) or the timeout passes."""
        gained = self.client.event_object()
        if self.volunteer(on_leadership=gained.set):
            return True
        return gained.wait(timeout_ms)

    def contenders(self) -> List[str]:
        """Candidate identifiers in succession order (leader first)."""
        found = []
        for name in sequence_sorted(self.client.get_children(self.path),
                                    self.prefix):
            try:
                data, _stat = self.client.get_data(f"{self.path}/{name}")
                found.append(data.decode())
            except NoNodeError:
                pass
        return found
