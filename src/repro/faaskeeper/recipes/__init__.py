"""Coordination recipes — the wait-free primitives of Hunt et al. (ATC'10)
on the FaaSKeeper client.

Everything here is built strictly on the public client API (ephemeral +
sequence nodes, watches, ``multi()``, ``ensure_path``, the session retry),
so a recipe is exactly the code an application would ship — and every
recipe operation exercises the full write pipeline, client cache and
distributor stages underneath.

===============  ==========================================================
Recipe           One-liner
===============  ==========================================================
`Lock`           ``with Lock(client, "/locks/app"): ...`` — FIFO, herd-free
`Semaphore`      ``Semaphore(client, "/leases/gpu", max_leases=4)``
`Barrier`        ``Barrier(client, "/gates/maint").wait()``
`DoubleBarrier`  ``DoubleBarrier(client, "/sync/job", n).enter() / .leave()``
`Counter`        ``jobs = Counter(client, "/stats/jobs"); jobs += 1``
`Queue`          ``Queue(client, "/queues/tasks").put(b"job")`` / ``.get()``
`Election`       ``Election(client, "/election").volunteer(on_leadership)``
===============  ==========================================================

Each recipe offers synchronous methods for linear flows and ``co_*``
coroutine forms for concurrent simulation-process drivers (see
:mod:`repro.faaskeeper.recipes.base`).
"""

from .barrier import Barrier, DoubleBarrier
from .base import Recipe, sequence_sorted
from .counter import Counter
from .election import Election
from .lock import Lock, Semaphore
from .queue import Queue

__all__ = [
    "Recipe",
    "sequence_sorted",
    "Lock",
    "Semaphore",
    "Barrier",
    "DoubleBarrier",
    "Counter",
    "Queue",
    "Election",
]
