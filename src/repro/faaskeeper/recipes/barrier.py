"""Barrier and double barrier (Hunt et al., ATC'10, Section 2.4).

The single :class:`Barrier` is a gate node: while it exists, waiters
block; removing it releases them all (one watch delivery per waiter — the
fan-out is the point here, not herd avoidance).  The :class:`DoubleBarrier`
synchronizes a fixed-size group at entry *and* exit: computation starts
only once ``num_clients`` participants have entered, and ends only once
every participant has left — the classic start/finish bracket for
distributed computations.

Both lean on Z4 (watch/data ordering): a waiter that observed the gate up
armed its watch *before* the look, so the release can never slip between
the observation and the wait.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..exceptions import NodeExistsError, NoNodeError
from ..model import parent_path
from .base import Recipe

__all__ = ["Barrier", "DoubleBarrier"]


class Barrier(Recipe):
    """Kazoo-style single barrier::

        barrier = recipes.Barrier(client, "/barriers/maintenance")
        barrier.create()       # raise the gate
        ...
        barrier.wait()         # (other sessions) block while the gate is up
        barrier.remove()       # release everyone
    """

    # ------------------------------------------------------------ coroutine
    def co_create(self) -> Generator:
        """Raise the barrier; False when it already existed."""
        parent = parent_path(self.path)
        if parent != "/":
            yield from self.client.co_ensure_path(parent)
        try:
            yield self.client.create_async(self.path, b"").event
        except NodeExistsError:
            return False
        return True

    def co_wait(self, timeout_ms: Optional[float] = None) -> Generator:
        """Block while the barrier node exists; True once it is gone,
        False on timeout."""
        deadline = None if timeout_ms is None else self.env.now + timeout_ms
        while True:
            fired, on_change = self._wake_event()
            stat = yield self.client.exists_async(self.path,
                                                  watch=on_change).event
            if stat is None:
                return True
            if not (yield from self._co_wait(fired, deadline)):
                return False

    def co_remove(self) -> Generator:
        """Tear the barrier down; False when it was already gone."""
        try:
            yield self.client.delete_async(self.path).event
        except NoNodeError:
            return False
        return True

    # ------------------------------------------------------------ sync
    def create(self) -> bool:
        return self._run(self.co_create())

    def wait(self, timeout_ms: Optional[float] = None) -> bool:
        return self._run(self.co_wait(timeout_ms))

    def remove(self) -> bool:
        return self._run(self.co_remove())


class DoubleBarrier(Recipe):
    """Enter/leave barrier for a group of ``num_clients`` participants.

    ``enter()`` registers an ephemeral presence node and blocks until the
    group is complete (the completing participant raises a ``ready`` gate
    the others' exists-watches observe); ``leave()`` withdraws the
    presence node and blocks until every participant has left.

    The ``ready`` gate stays up until the **last** leaver observes an
    empty group and tears it down: a completer that leaves immediately
    must not delete the gate while a straggler's enter-side watch
    delivery is still in flight — the gate would never be re-created and
    the straggler (and with it every leaver waiting on its presence node)
    would block forever.  Since every entrant also leaves, the gate is
    guaranteed to still be up when a straggler's re-check runs.  One
    group generation at a time: a new round may start once the previous
    one has fully left.
    """

    READY = "ready"

    def __init__(self, client, path: str, num_clients: int,
                 identifier: str = "") -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        super().__init__(client, path)
        self.num_clients = num_clients
        self.identifier = identifier or client.session_id
        self.node: Optional[str] = None

    def _present(self, children) -> int:
        return sum(1 for c in children if c != self.READY)

    # ------------------------------------------------------------ coroutine
    def co_enter(self, timeout_ms: Optional[float] = None) -> Generator:
        """Join the group; returns True once ``num_clients`` have entered
        (False on timeout, after withdrawing)."""
        yield from self.co_ensure_path()
        deadline = None if timeout_ms is None else self.env.now + timeout_ms
        if self.node is None:
            node = f"{self.path}/{self.identifier}"
            try:
                yield self.client.create_async(node, b"",
                                               ephemeral=True).event
            except NodeExistsError:
                pass  # re-entering with the same identifier
            self.node = node
        ready = f"{self.path}/{self.READY}"
        while True:
            # Arm the gate watch before counting, so the completing
            # participant's create cannot slip between look and wait.
            fired, on_change = self._wake_event()
            stat = yield self.client.exists_async(ready, watch=on_change).event
            if stat is not None:
                return True
            children = yield self.client.get_children_async(self.path).event
            if self._present(children) >= self.num_clients:
                try:
                    yield self.client.create_async(ready, b"").event
                except NodeExistsError:
                    pass  # another completer raced us: gate is up either way
                return True
            if not (yield from self._co_wait(fired, deadline)):
                yield from self._co_delete_quiet(self.node)
                self.node = None
                return False

    def co_leave(self, timeout_ms: Optional[float] = None) -> Generator:
        """Withdraw and block until the whole group has left (True), or
        time out (False)."""
        deadline = None if timeout_ms is None else self.env.now + timeout_ms
        ready = f"{self.path}/{self.READY}"
        if self.node is not None:
            yield from self._co_delete_quiet(self.node)
            self.node = None
        while True:
            fired, on_change = self._wake_event()
            try:
                children = yield self.client.get_children_async(
                    self.path, watch=on_change).event
            except NoNodeError:
                return True  # barrier path itself removed: nothing to wait on
            if self._present(children) == 0:
                # Last leaver (or a harmless race of several) tears the
                # ready gate down, making the barrier reusable.
                yield from self._co_delete_quiet(ready)
                return True
            if not (yield from self._co_wait(fired, deadline)):
                return False

    # ------------------------------------------------------------ sync
    def enter(self, timeout_ms: Optional[float] = None) -> bool:
        return self._run(self.co_enter(timeout_ms))

    def leave(self, timeout_ms: Optional[float] = None) -> bool:
        return self._run(self.co_leave(timeout_ms))
