"""HBase-on-ZooKeeper coordination workload (Section 5.1, Figure 5).

The paper profiles a real HBase cluster under YCSB and finds that while
HBase serves thousands of data requests per second, ZooKeeper sees fewer
than a thousand requests in half an hour — it holds cluster state (one
znode per RegionServer, master election, meta location), not data.

This module replays that behaviour synthetically:

* at deployment, HBase creates its znode tree (29 nodes in the paper's
  measurement; median size 0 bytes, mean 46, max 320 for the RegionServer
  entries);
* during YCSB phases, data requests go to the (modeled) RegionServers and
  only rare coordination events touch ZooKeeper: periodic master sanity
  checks, region state transitions on workload-phase changes;
* ZooKeeper's VM utilization stays in the paper's 0.5-1 % band while the
  HBase request counter climbs by thousands per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cloud.cloud import Cloud
from ..zookeeper import ZooKeeperDeployment, deploy_zookeeper
from .ycsb import CORE_WORKLOADS, YcsbWorkload

__all__ = ["HBaseSimulation", "HBaseZnodeLayout", "UtilizationSample"]

#: Baseline CPU/memory fraction of the ZooKeeper JVM when idle.
IDLE_CPU_FRACTION = 0.004
IDLE_MEM_FRACTION = 0.055


@dataclass(frozen=True)
class HBaseZnodeLayout:
    """The znode tree HBase keeps in ZooKeeper."""

    n_regionservers: int = 3

    def nodes(self) -> List[Tuple[str, bytes]]:
        """(path, data) pairs; sizes follow the paper's measurement."""
        base = [
            ("/hbase", b""),
            ("/hbase/master", b"m" * 120),
            ("/hbase/meta-region-server", b"r" * 100),
            ("/hbase/hbaseid", b"i" * 67),
            ("/hbase/table", b""),
            ("/hbase/rs", b""),
            ("/hbase/splitWAL", b""),
            ("/hbase/backup-masters", b""),
            ("/hbase/flush-table-proc", b""),
            ("/hbase/online-snapshot", b""),
            ("/hbase/master-maintenance", b""),
            ("/hbase/replication", b""),
            ("/hbase/replication/peers", b""),
            ("/hbase/replication/rs", b""),
            ("/hbase/draining", b""),
            ("/hbase/namespace", b""),
            ("/hbase/namespace/default", b"d" * 20),
            ("/hbase/namespace/hbase", b"h" * 20),
            ("/hbase/balancer", b""),
            ("/hbase/normalizer", b"n" * 10),
            ("/hbase/switch", b""),
            ("/hbase/switch/split", b"s" * 10),
            ("/hbase/switch/merge", b"s" * 10),
            ("/hbase/snapshot-cleanup", b"c" * 10),
            ("/hbase/running", b"y" * 16),
            ("/hbase/table/hbase:meta", b"t" * 31),
        ]
        for i in range(self.n_regionservers):
            # the largest nodes: one per RegionServer (~320 bytes)
            base.append((f"/hbase/rs/server{i}", b"x" * 320))
        return base


@dataclass
class UtilizationSample:
    time_ms: float
    cpu: float
    memory: float
    hbase_requests: int
    zk_reads: int
    zk_writes: int


class HBaseSimulation:
    """Replays YCSB phases against HBase + ZooKeeper."""

    def __init__(self, cloud: Cloud, n_regionservers: int = 3,
                 zk: Optional[ZooKeeperDeployment] = None) -> None:
        self.cloud = cloud
        self.layout = HBaseZnodeLayout(n_regionservers)
        self.zk = zk or deploy_zookeeper(cloud, n_servers=3, vm_type="t3.medium")
        self.client = self.zk.connect(server_index=0)
        self.rng = cloud.rng.stream("hbase")
        self.hbase_requests = 0
        self.zk_reads = 0
        self.zk_writes = 0
        self.samples: List[UtilizationSample] = []
        self._deploy_tree()

    # ------------------------------------------------------------ setup
    def _deploy_tree(self) -> None:
        created = set()
        for path, data in self.layout.nodes():
            parts = path.strip("/").split("/")
            for depth in range(1, len(parts)):
                prefix = "/" + "/".join(parts[:depth])
                if prefix not in created and self.client.exists(prefix) is None:
                    self.client.create(prefix, b"")
                    created.add(prefix)
                    self.zk_writes += 1
            if path not in created:
                self.client.create(path, data)
                created.add(path)
                self.zk_writes += 1

    # ------------------------------------------------------------ stats
    def node_size_stats(self) -> Dict[str, float]:
        sizes = sorted(len(d) for _p, d in self.layout.nodes())
        return {
            "count": len(sizes),
            "median": float(sizes[len(sizes) // 2]),
            "mean": sum(sizes) / len(sizes),
            "max": float(max(sizes)),
        }

    # ------------------------------------------------------------ phases
    def run_phase(self, workload: YcsbWorkload, duration_ms: float = 300_000.0,
                  hbase_rate_per_s: float = 2000.0,
                  sample_every_ms: float = 10_000.0) -> None:
        """One YCSB phase: heavy HBase traffic, almost no ZooKeeper traffic."""
        end = self.cloud.now + duration_ms
        # Phase transition: the master checks region states (a few reads,
        # occasionally a region move -> one write).
        for _ in range(3):
            self.client.get_children("/hbase/rs")
            self.zk_reads += 1
        if workload.insert > 0 or workload.update >= 0.5:
            self.client.set_data("/hbase/meta-region-server",
                                 b"r" * 100)
            self.zk_writes += 1
        while self.cloud.now < end:
            window = min(sample_every_ms, end - self.cloud.now)
            # HBase data path: served by RegionServers, not ZooKeeper.
            self.hbase_requests += int(hbase_rate_per_s * window / 1000.0)
            # Rare coordination reads (liveness checks by master/clients).
            if self.rng.random() < 0.25:
                self.client.exists("/hbase/running")
                self.zk_reads += 1
            self.cloud.run(until=min(end, self.cloud.now + window))
            self._sample()

    def _sample(self) -> None:
        # CPU: busy fraction of the serving ZooKeeper VM over the sample
        # window plus the JVM idle floor; memory: resident set fraction.
        server = self.zk.ensemble.servers[0]
        window = 10_000.0
        busy = getattr(self, "_last_busy", 0.0)
        cpu = IDLE_CPU_FRACTION + max(0.0, server.busy_ms - busy) / window
        self._last_busy = server.busy_ms
        mem = IDLE_MEM_FRACTION + 0.00001 * len(server.tree)
        self.samples.append(UtilizationSample(
            time_ms=self.cloud.now,
            cpu=min(1.0, cpu),
            memory=mem,
            hbase_requests=self.hbase_requests,
            zk_reads=self.zk_reads,
            zk_writes=self.zk_writes,
        ))

    def run_standard_experiment(self, phase_ms: float = 300_000.0,
                                workloads=None) -> None:
        """The paper's setup: all core workloads, five minutes each."""
        for workload in (workloads or CORE_WORKLOADS):
            self.run_phase(workload, duration_ms=phase_ms)
