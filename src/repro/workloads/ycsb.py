"""YCSB core workload definitions (Cooper et al., SoCC'10).

The paper's Section 5.1 drives HBase with the standard YCSB workloads to
show how little a production system actually uses ZooKeeper.  We model the
six core workloads by their official read/update/insert/scan mixes; the
HBase simulation (:mod:`repro.workloads.hbase`) replays them phase by
phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["YcsbWorkload", "CORE_WORKLOADS"]


@dataclass(frozen=True)
class YcsbWorkload:
    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan \
            + self.read_modify_write
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: mix sums to {total}")


CORE_WORKLOADS: List[YcsbWorkload] = [
    YcsbWorkload("A", read=0.5, update=0.5),
    YcsbWorkload("B", read=0.95, update=0.05),
    YcsbWorkload("C", read=1.0),
    YcsbWorkload("D", read=0.95, insert=0.05),
    YcsbWorkload("E", scan=0.95, insert=0.05),
    YcsbWorkload("F", read=0.5, read_modify_write=0.5),
]
