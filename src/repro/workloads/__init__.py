"""Workload generators: read/write mixes, YCSB, the HBase coordination trace."""

from .hbase import HBaseSimulation, HBaseZnodeLayout, UtilizationSample
from .mixes import MixSpec, NODE_SIZES_FIG9, NODE_SIZES_FIG11, generate_mix
from .ycsb import CORE_WORKLOADS, YcsbWorkload

__all__ = [
    "MixSpec",
    "generate_mix",
    "NODE_SIZES_FIG9",
    "NODE_SIZES_FIG11",
    "YcsbWorkload",
    "CORE_WORKLOADS",
    "HBaseSimulation",
    "HBaseZnodeLayout",
    "UtilizationSample",
]
