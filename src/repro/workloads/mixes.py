"""Read/write workload mixes for the comparison benchmarks."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

__all__ = ["MixSpec", "generate_mix", "NODE_SIZES_FIG9", "NODE_SIZES_FIG11"]

#: Node sizes swept by Figure 9 (bytes).
NODE_SIZES_FIG9 = (4, 1024, 64 * 1024, 128 * 1024, 250 * 1024)
#: Node sizes swept by Figure 11 (bytes) — the typical ZooKeeper range.
NODE_SIZES_FIG11 = (4, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class MixSpec:
    """A randomized operation mix over a fixed set of node paths."""

    n_ops: int
    read_fraction: float
    n_nodes: int = 8
    value_bytes: int = 1024
    seed: int = 0

    def paths(self) -> List[str]:
        return [f"/mix/n{i}" for i in range(self.n_nodes)]


def generate_mix(spec: MixSpec) -> Iterator[Tuple[str, str, bytes]]:
    """Yields (op, path, data) tuples: op in {"read", "write"}."""
    rng = random.Random(spec.seed)
    paths = spec.paths()
    for i in range(spec.n_ops):
        path = paths[rng.randrange(len(paths))]
        if rng.random() < spec.read_fraction:
            yield "read", path, b""
        else:
            yield "write", path, bytes(rng.getrandbits(8) for _ in range(8)) \
                + b"x" * max(0, spec.value_bytes - 8)
