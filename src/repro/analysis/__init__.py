"""Result summarization and table rendering for the benchmark harnesses."""

from .stats import LatencySummary, crossover, summarize, who_wins
from .tables import fmt, render_heatmap, render_table

__all__ = [
    "LatencySummary",
    "summarize",
    "crossover",
    "who_wins",
    "render_table",
    "render_heatmap",
    "fmt",
]
