"""Percentile summaries and series-shape assertions for the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.rng import percentile

__all__ = ["summarize", "LatencySummary", "crossover", "who_wins"]


@dataclass(frozen=True)
class LatencySummary:
    """The row shape of the paper's latency tables."""

    n: int
    min: float
    p50: float
    p90: float
    p95: float
    p99: float
    max: float

    def row(self, digits: int = 2) -> List[float]:
        return [round(v, digits) for v in
                (self.min, self.p50, self.p90, self.p95, self.p99, self.max)]


def summarize(samples: Sequence[float]) -> LatencySummary:
    if not samples:
        raise ValueError("no samples to summarize")
    return LatencySummary(
        n=len(samples),
        min=min(samples),
        p50=percentile(samples, 50),
        p90=percentile(samples, 90),
        p95=percentile(samples, 95),
        p99=percentile(samples, 99),
        max=max(samples),
    )


def crossover(xs: Sequence[float], a: Sequence[float], b: Sequence[float]
              ) -> Optional[float]:
    """x position where series ``a`` crosses series ``b`` (linear interp)."""
    for i in range(1, len(xs)):
        d0 = a[i - 1] - b[i - 1]
        d1 = a[i] - b[i]
        if d0 == 0:
            return xs[i - 1]
        if d0 * d1 < 0:
            frac = abs(d0) / (abs(d0) + abs(d1))
            return xs[i - 1] + frac * (xs[i] - xs[i - 1])
    return None


def who_wins(series: Dict[str, float]) -> str:
    """Name of the smallest-valued series (the latency/cost winner)."""
    return min(series, key=series.get)
