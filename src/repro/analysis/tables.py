"""ASCII table rendering for the benchmark harnesses.

Every bench prints the same rows/series the paper's table or figure shows,
in a diff-friendly plain-text layout.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["render_table", "render_heatmap", "fmt"]


def fmt(value: Any, digits: int = 2) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None, digits: int = 2) -> str:
    str_rows = [[fmt(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_heatmap(row_labels: Sequence[str], col_labels: Sequence[str],
                   matrix: Sequence[Sequence[float]],
                   title: Optional[str] = None, digits: int = 2) -> str:
    headers = [""] + list(col_labels)
    rows = [[label] + list(row) for label, row in zip(row_labels, matrix)]
    return render_table(headers, rows, title=title, digits=digits)
