"""Shared helpers for the benchmark harnesses in ``benchmarks/``.

Each bench regenerates one of the paper's tables or figures: it runs the
simulation, prints the same rows/series the paper reports, and asserts the
qualitative *shape* (who wins, rough factors, crossovers).  These helpers
keep the benches short and uniform.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..cloud import Cloud
from ..faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from ..zookeeper import ZooKeeperDeployment, deploy_zookeeper
from .stats import LatencySummary, summarize

__all__ = [
    "deploy_fk",
    "timed",
    "sweep_write_latency",
    "sweep_read_latency",
    "collect_write_costs",
    "segment_summary",
    "SIZES_LABELS",
]

SIZES_LABELS = {
    4: "4B", 128: "128B", 256: "256B", 512: "512B",
    1024: "1kB", 2048: "2kB", 4096: "4kB",
    64 * 1024: "64kB", 128 * 1024: "128kB", 250 * 1024: "250kB",
    400 * 1024: "400kB",
}


def label(size_bytes: int) -> str:
    return SIZES_LABELS.get(size_bytes, f"{size_bytes}B")


def deploy_fk(seed: int = 0, provider: str = "aws", **config
              ) -> Tuple[Cloud, FaaSKeeperService, Any]:
    """Cloud + service + connected client in one call."""
    cloud = Cloud.aws(seed=seed) if provider == "aws" else Cloud.gcp(seed=seed)
    service = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(**config))
    client = service.connect()
    return cloud, service, client


def timed(cloud: Cloud, op: Callable[[], Any]) -> float:
    """Virtual-clock duration of one synchronous client operation."""
    t0 = cloud.now
    op()
    return cloud.now - t0


def sweep_write_latency(client, cloud, sizes: Sequence[int],
                        reps: int = 30, path: str = "/bench"
                        ) -> Dict[int, LatencySummary]:
    """set_data latency per node size (the Figure 9/11/12 x-axis)."""
    client.create(path, b"")
    out: Dict[int, LatencySummary] = {}
    for size in sizes:
        payload = b"x" * size
        samples = [timed(cloud, lambda: client.set_data(path, payload))
                   for _ in range(reps)]
        out[size] = summarize(samples)
    return out


def sweep_read_latency(client, cloud, sizes: Sequence[int],
                       reps: int = 50, path: str = "/bench"
                       ) -> Dict[int, LatencySummary]:
    """get_data latency per node size (the Figure 8 x-axis)."""
    client.create(path, b"")
    out: Dict[int, LatencySummary] = {}
    for size in sizes:
        client.set_data(path, b"x" * size)
        samples = [timed(cloud, lambda: client.get_data(path))
                   for _ in range(reps)]
        out[size] = summarize(samples)
    return out


def collect_write_costs(service, client, cloud, size: int,
                        reps: int = 25, path: str = "/cost"
                        ) -> Dict[str, float]:
    """Metered cost per write, split by category, scaled to 100 K requests
    (the cost bars of Figures 9 and 11)."""
    client.create(path, b"")
    cloud.run(until=cloud.now + 5_000)  # drain leader/watch work
    before = cloud.meter.by_service()
    payload = b"x" * size
    for _ in range(reps):
        client.set_data(path, payload)
    cloud.run(until=cloud.now + 5_000)
    delta = cloud.meter.delta(before)
    scale = 100_000 / reps
    split = {
        "queue": sum(v for k, v in delta.items() if k.startswith("sqs")) * scale,
        "system_store": delta.get("dynamodb:system", 0.0) * scale,
        "user_store": (delta.get("dynamodb:user", 0.0)
                       + delta.get("s3", 0.0)) * scale,
        "follower": delta.get("fn:fk-follower", 0.0) * scale,
        "leader": delta.get("fn:fk-leader", 0.0) * scale,
    }
    split["total"] = sum(split.values())
    return split


def segment_summary(fn, segments: Iterable[str]) -> Dict[str, LatencySummary]:
    """Summaries of a deployed function's timing probes (Fig. 10, Table 3)."""
    out = {}
    for name in segments:
        samples = fn.segments.get(name, [])
        if samples:
            out[name] = summarize(samples)
    return out
